#include "tree/monitoring_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <stdexcept>

namespace remo {

namespace {
constexpr double kEps = 1e-9;
}

std::uint64_t send_period(double weight) noexcept {
  const double w = std::clamp(weight, 1e-6, 1.0);
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(1.0 / w)));
}

MonitoringTree::MonitoringTree(std::vector<TreeAttrSpec> attrs,
                               Capacity collector_avail, CostModel cost)
    : attrs_(std::move(attrs)), cost_(cost) {
  Vertex root;
  root.parent = kNoNode;
  root.local.assign(attrs_.size(), 0);
  root.in.assign(attrs_.size(), 0);
  root.avail = collector_avail;
  vertices_.emplace(kCollectorId, std::move(root));
}

std::vector<AttrId> MonitoringTree::attr_ids() const {
  std::vector<AttrId> ids;
  ids.reserve(attrs_.size());
  for (const auto& s : attrs_) ids.push_back(s.attr);
  return ids;
}

const MonitoringTree::Vertex& MonitoringTree::vat(NodeId id) const {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) throw std::out_of_range("node not in tree");
  return it->second;
}

MonitoringTree::Vertex& MonitoringTree::vat(NodeId id) {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) throw std::out_of_range("node not in tree");
  return it->second;
}

double MonitoringTree::weighted_out(const std::vector<std::uint32_t>& in) const {
  double y = 0.0;
  for (std::size_t m = 0; m < attrs_.size(); ++m)
    y += attrs_[m].weight * static_cast<double>(attrs_[m].funnel(in[m]));
  return y;
}

std::vector<std::uint32_t> MonitoringTree::out_of(
    const std::vector<std::uint32_t>& in) const {
  std::vector<std::uint32_t> out(in.size());
  for (std::size_t m = 0; m < attrs_.size(); ++m) out[m] = attrs_[m].funnel(in[m]);
  return out;
}

std::vector<NodeId> MonitoringTree::members() const {
  std::vector<NodeId> out;
  out.reserve(vertices_.size() - 1);
  for (const auto& [id, v] : vertices_)
    if (id != kCollectorId) out.push_back(id);
  return out;
}

NodeId MonitoringTree::parent(NodeId id) const { return vat(id).parent; }

const std::vector<NodeId>& MonitoringTree::children(NodeId id) const {
  return vat(id).children;
}

std::size_t MonitoringTree::depth(NodeId id) const {
  std::size_t d = 0;
  NodeId cur = id;
  while (cur != kCollectorId) {
    cur = vat(cur).parent;
    ++d;
  }
  return d;
}

std::size_t MonitoringTree::height() const {
  // BFS from the root; O(n).
  std::size_t h = 0;
  std::deque<std::pair<NodeId, std::size_t>> q{{kCollectorId, 0}};
  while (!q.empty()) {
    auto [id, d] = q.front();
    q.pop_front();
    h = std::max(h, d);
    for (NodeId c : vat(id).children) q.emplace_back(c, d + 1);
  }
  return h;
}

std::vector<NodeId> MonitoringTree::branch_nodes(NodeId r) const {
  std::vector<NodeId> out;
  std::deque<NodeId> q{r};
  while (!q.empty()) {
    NodeId id = q.front();
    q.pop_front();
    out.push_back(id);
    for (NodeId c : vat(id).children) q.push_back(c);
  }
  return out;
}

bool MonitoringTree::in_subtree(NodeId id, NodeId r) const {
  NodeId cur = id;
  while (true) {
    if (cur == r) return true;
    if (cur == kCollectorId) return false;
    cur = vat(cur).parent;
  }
}

double MonitoringTree::payload(NodeId id) const {
  return id == kCollectorId ? 0.0 : vat(id).y;
}

Capacity MonitoringTree::send_cost(NodeId id) const {
  if (id == kCollectorId) return 0.0;
  return cost_.per_message + cost_.per_value * vat(id).y;
}

Capacity MonitoringTree::usage(NodeId id) const {
  const Vertex& v = vat(id);
  return (id == kCollectorId ? 0.0 : send_cost(id)) + v.recv;
}

Capacity MonitoringTree::avail(NodeId id) const { return vat(id).avail; }

void MonitoringTree::set_avail(NodeId id, Capacity avail) {
  if (avail + 1e-9 < usage(id))
    throw std::invalid_argument("set_avail below current usage");
  vat(id).avail = avail;
}

const std::vector<std::uint32_t>& MonitoringTree::in_counts(NodeId id) const {
  return vat(id).in;
}

std::vector<std::uint32_t> MonitoringTree::out_counts(NodeId id) const {
  return out_of(vat(id).in);
}

const std::vector<std::uint32_t>& MonitoringTree::local_counts(NodeId id) const {
  return vat(id).local;
}

std::size_t MonitoringTree::collected_pairs() const {
  std::size_t total = 0;
  for (const auto& [id, v] : vertices_) {
    if (id == kCollectorId) continue;
    for (auto x : v.local) total += x;
  }
  return total;
}

Capacity MonitoringTree::total_cost() const {
  Capacity total = 0;
  for (const auto& [id, v] : vertices_)
    if (id != kCollectorId) total += send_cost(id);
  return total;
}

bool MonitoringTree::feasible_add(NodeId parent,
                                  const std::vector<std::uint32_t>& child_out,
                                  double child_u, NodeId* blocker) const {
  std::vector<std::int64_t> delta(child_out.begin(), child_out.end());
  return feasible_walk(parent, std::move(delta), child_u, blocker);
}

bool MonitoringTree::feasible_walk(NodeId parent, std::vector<std::int64_t> delta,
                                   Capacity recv_delta, NodeId* blocker) const {
  NodeId q = parent;
  while (true) {
    const Vertex& qv = vat(q);
    if (q == kCollectorId) {
      if (usage(q) + recv_delta > qv.avail + kEps) {
        if (blocker) *blocker = q;
        return false;
      }
      return true;
    }
    // New in-counts and the resulting payload change at q.
    double new_y = 0.0;
    std::vector<std::int64_t> next_delta(attrs_.size());
    for (std::size_t m = 0; m < attrs_.size(); ++m) {
      const auto old_in = qv.in[m];
      const auto new_in = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(old_in) + delta[m]);
      const auto old_out = attrs_[m].funnel(old_in);
      const auto new_out = attrs_[m].funnel(new_in);
      next_delta[m] =
          static_cast<std::int64_t>(new_out) - static_cast<std::int64_t>(old_out);
      new_y += attrs_[m].weight * static_cast<double>(new_out);
    }
    const double dy = new_y - qv.y;
    if (usage(q) + recv_delta + cost_.per_value * dy > qv.avail + kEps) {
      if (blocker) *blocker = q;
      return false;
    }
    bool changed = false;
    for (auto d : next_delta)
      if (d != 0) changed = true;
    if (!changed && dy == 0.0) return true;  // ancestors unaffected
    recv_delta = cost_.per_value * dy;
    delta = std::move(next_delta);
    q = qv.parent;
  }
}

void MonitoringTree::propagate(NodeId parent,
                               const std::vector<std::uint32_t>& child_out,
                               int sign) {
  std::vector<std::int64_t> delta(attrs_.size());
  for (std::size_t m = 0; m < attrs_.size(); ++m)
    delta[m] = sign * static_cast<std::int64_t>(child_out[m]);
  propagate_delta(parent, std::move(delta));
}

void MonitoringTree::propagate_delta(NodeId parent, std::vector<std::int64_t> delta) {
  NodeId q = parent;
  while (true) {
    Vertex& qv = vat(q);
    std::vector<std::int64_t> next_delta(attrs_.size());
    bool changed = false;
    for (std::size_t m = 0; m < attrs_.size(); ++m) {
      const auto old_out = attrs_[m].funnel(qv.in[m]);
      const auto new_in =
          static_cast<std::int64_t>(qv.in[m]) + delta[m];
      qv.in[m] = static_cast<std::uint32_t>(new_in);
      const auto new_out = attrs_[m].funnel(qv.in[m]);
      next_delta[m] =
          static_cast<std::int64_t>(new_out) - static_cast<std::int64_t>(old_out);
      if (next_delta[m] != 0) changed = true;
    }
    const double old_y = qv.y;
    qv.y = weighted_out(qv.in);
    // q's message grew/shrank: its parent's cached receive load follows.
    if (q != kCollectorId && qv.parent != kNoNode)
      vat(qv.parent).recv += cost_.per_value * (qv.y - old_y);
    if (q == kCollectorId || !changed) return;
    delta = std::move(next_delta);
    q = qv.parent;
  }
}

bool MonitoringTree::can_attach(const BuildItem& item, NodeId parent,
                                NodeId* blocker) const {
  if (item.local.size() != attrs_.size())
    throw std::invalid_argument("BuildItem count vector size mismatch");
  if (contains(item.id) || !contains(parent)) return false;
  const auto out = out_of(item.local);
  const double y = weighted_out(item.local);
  const Capacity u = cost_.per_message + cost_.per_value * y;
  if (u > item.avail + kEps) {
    if (blocker) *blocker = item.id;
    return false;
  }
  return feasible_add(parent, out, u, blocker);
}

void MonitoringTree::attach(const BuildItem& item, NodeId parent) {
  if (!can_attach(item, parent)) std::abort();  // callers must check first
  Vertex v;
  v.parent = parent;
  v.local = item.local;
  v.in = item.local;
  v.avail = item.avail;
  v.y = weighted_out(v.in);
  const auto out = out_of(v.in);
  const Capacity u = cost_.per_message + cost_.per_value * v.y;
  vertices_.emplace(item.id, std::move(v));
  Vertex& pv = vat(parent);
  pv.children.push_back(item.id);
  pv.recv += u;
  propagate(parent, out, +1);
}

bool MonitoringTree::can_move_branch(NodeId r, NodeId new_parent, NodeId* blocker) {
  if (!contains(r) || !contains(new_parent)) return false;
  if (in_subtree(new_parent, r)) return false;  // would create a cycle
  const NodeId old_parent = vat(r).parent;
  if (old_parent == new_parent) return false;
  // Temporarily unlink, test, relink. Restoring is exact because the
  // branch's internal state never changes.
  const auto out = out_counts(r);
  const Capacity u = send_cost(r);
  {
    Vertex& opv = vat(old_parent);
    opv.children.erase(std::find(opv.children.begin(), opv.children.end(), r));
    opv.recv -= u;
  }
  propagate(old_parent, out, -1);
  const bool ok = feasible_add(new_parent, out, u, blocker);
  propagate(old_parent, out, +1);
  {
    Vertex& opv = vat(old_parent);
    opv.children.push_back(r);
    opv.recv += u;
  }
  return ok;
}

bool MonitoringTree::move_branch(NodeId r, NodeId new_parent) {
  if (!contains(r) || !contains(new_parent)) return false;
  if (in_subtree(new_parent, r)) return false;
  const NodeId old_parent = vat(r).parent;
  if (old_parent == new_parent) return false;
  const auto out = out_counts(r);
  const Capacity u = send_cost(r);
  {
    Vertex& opv = vat(old_parent);
    opv.children.erase(std::find(opv.children.begin(), opv.children.end(), r));
    opv.recv -= u;
  }
  propagate(old_parent, out, -1);
  if (!feasible_add(new_parent, out, u, nullptr)) {
    propagate(old_parent, out, +1);
    Vertex& opv = vat(old_parent);
    opv.children.push_back(r);
    opv.recv += u;
    return false;
  }
  propagate(new_parent, out, +1);
  Vertex& npv = vat(new_parent);
  npv.children.push_back(r);
  npv.recv += u;
  vat(r).parent = new_parent;
  return true;
}

std::vector<BuildItem> MonitoringTree::detach_branch(NodeId r) {
  const auto nodes = branch_nodes(r);
  const NodeId old_parent = vat(r).parent;
  const auto out = out_counts(r);
  {
    Vertex& opv = vat(old_parent);
    opv.children.erase(std::find(opv.children.begin(), opv.children.end(), r));
    opv.recv -= send_cost(r);
  }
  propagate(old_parent, out, -1);
  std::vector<BuildItem> items;
  items.reserve(nodes.size());
  for (NodeId id : nodes) {
    const Vertex& v = vat(id);
    items.push_back(BuildItem{id, v.local, v.avail});
  }
  for (NodeId id : nodes) vertices_.erase(id);
  return items;
}

bool MonitoringTree::can_update_local(
    NodeId id, const std::vector<std::uint32_t>& new_local) const {
  if (new_local.size() != attrs_.size())
    throw std::invalid_argument("local count vector size mismatch");
  if (!contains(id) || id == kCollectorId) return false;
  const Vertex& v = vat(id);
  std::vector<std::uint32_t> new_in(attrs_.size());
  std::vector<std::int64_t> out_delta(attrs_.size());
  for (std::size_t m = 0; m < attrs_.size(); ++m) {
    new_in[m] = v.in[m] - v.local[m] + new_local[m];
    out_delta[m] = static_cast<std::int64_t>(attrs_[m].funnel(new_in[m])) -
                   static_cast<std::int64_t>(attrs_[m].funnel(v.in[m]));
  }
  const double dy = weighted_out(new_in) - v.y;
  // Only the node's own send cost changes locally; receives are untouched.
  if (usage(id) + cost_.per_value * dy > v.avail + kEps) return false;
  return feasible_walk(v.parent, std::move(out_delta), cost_.per_value * dy,
                       nullptr);
}

bool MonitoringTree::update_local(NodeId id,
                                  const std::vector<std::uint32_t>& new_local) {
  if (!can_update_local(id, new_local)) return false;
  Vertex& v = vat(id);
  std::vector<std::int64_t> out_delta(attrs_.size());
  const auto old_out = out_of(v.in);
  const double old_y = v.y;
  for (std::size_t m = 0; m < attrs_.size(); ++m)
    v.in[m] = v.in[m] - v.local[m] + new_local[m];
  v.local = new_local;
  v.y = weighted_out(v.in);
  const auto new_out = out_of(v.in);
  for (std::size_t m = 0; m < attrs_.size(); ++m)
    out_delta[m] = static_cast<std::int64_t>(new_out[m]) -
                   static_cast<std::int64_t>(old_out[m]);
  vat(v.parent).recv += cost_.per_value * (v.y - old_y);
  propagate_delta(v.parent, std::move(out_delta));
  return true;
}

bool MonitoringTree::validate() const {
  // Parent/child symmetry and acyclicity via BFS from the collector.
  std::size_t seen = 0;
  std::deque<NodeId> q{kCollectorId};
  std::unordered_map<NodeId, bool> visited;
  while (!q.empty()) {
    NodeId id = q.front();
    q.pop_front();
    if (visited[id]) return false;  // cycle or duplicate child link
    visited[id] = true;
    ++seen;
    for (NodeId c : vat(id).children) {
      if (!contains(c) || vat(c).parent != id) return false;
      q.push_back(c);
    }
  }
  if (seen != vertices_.size()) return false;  // unreachable vertices

  // Recompute in-counts bottom-up and check caches + capacity.
  for (const auto& [id, v] : vertices_) {
    if (v.local.size() != attrs_.size() || v.in.size() != attrs_.size()) return false;
    std::vector<std::uint32_t> expect = v.local;
    for (NodeId c : v.children) {
      const auto out = out_of(vat(c).in);
      for (std::size_t m = 0; m < attrs_.size(); ++m) expect[m] += out[m];
    }
    if (expect != v.in) return false;
    if (std::abs(weighted_out(v.in) - v.y) > 1e-6) return false;
    double expect_recv = 0.0;
    for (NodeId c : v.children) expect_recv += send_cost(c);
    if (std::abs(expect_recv - v.recv) > 1e-6) return false;
    if (usage(id) > v.avail + 1e-6) return false;
  }
  return true;
}

}  // namespace remo
