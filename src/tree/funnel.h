// Funnel functions (Sec. 6.1): fnl_i^m(g_m, n_m) — the number of outgoing
// values a node emits for metric m given aggregation type g_m and n_m
// incoming (local + children) values. Holistic collection is the identity
// funnel; algebraic aggregates collapse to one value; TOP-k caps at k;
// DISTINCT uses the holistic upper bound exactly as the paper does.
#pragma once

#include <algorithm>
#include <cstdint>

#include "task/task.h"

namespace remo {

class FunnelSpec {
 public:
  constexpr FunnelSpec() = default;
  constexpr explicit FunnelSpec(AggType type, std::uint32_t k = 10)
      : type_(type), k_(k) {}

  constexpr AggType type() const noexcept { return type_; }
  constexpr std::uint32_t k() const noexcept { return k_; }

  /// Outgoing value count for n incoming values.
  constexpr std::uint32_t operator()(std::uint32_t n) const noexcept {
    switch (type_) {
      case AggType::kHolistic:
      case AggType::kDistinct:  // data-dependent; holistic upper bound (Sec. 6.1)
        return n;
      case AggType::kSum:
      case AggType::kMax:
      case AggType::kMin:
      case AggType::kCount:
      case AggType::kAvg:
        return n > 0 ? 1u : 0u;
      case AggType::kTopK:
        return std::min(n, k_);
    }
    return n;
  }

  constexpr bool operator==(const FunnelSpec&) const = default;

 private:
  AggType type_ = AggType::kHolistic;
  std::uint32_t k_ = 10;
};

}  // namespace remo
