// Reliability enhancement by task rewriting (Sec. 6.2). REMO's distinct
// trick is that replication needs no planner changes: rewrite the tasks
// (attribute aliases for SSDP, per-replica source sets for DSDP) and add
// conflict constraints so replicas can never share a tree — the partition
// search then automatically delivers each copy over a different path.
#pragma once

#include <unordered_map>
#include <vector>

#include "cost/system_model.h"
#include "partition/partition.h"
#include "task/task.h"

namespace remo {

struct ReliabilityRewriteResult {
  /// The expanded task list: originals (reliability cleared) + replicas.
  std::vector<MonitoringTask> tasks;
  /// Alias/replica attributes that must not share a tree.
  ConflictConstraints conflicts;
  /// alias attribute -> original attribute (aliases carry the same values).
  std::unordered_map<AttrId, AttrId> alias_of;
};

class ReliabilityRewriter {
 public:
  /// Alias attribute ids are allocated from `first_alias_id` upward; pick
  /// it above every real attribute id.
  explicit ReliabilityRewriter(AttrId first_alias_id)
      : next_alias_(first_alias_id) {}

  /// Rewrites all tasks. Non-replicated tasks pass through unchanged.
  ///
  /// SSDP: for each replica r >= 2 a clone task is emitted whose attributes
  /// are fresh aliases of the originals; original + aliases are pairwise
  /// conflicting.
  ///
  /// DSDP: the task must carry identical_groups; replica r collects an
  /// alias from the r-th node of every group (k = min group size bounds
  /// the usable replicas).
  ReliabilityRewriteResult rewrite(const std::vector<MonitoringTask>& tasks);

  /// Makes every alias observable wherever its original is, so the task
  /// manager's observability filter admits the rewritten tasks.
  static void register_aliases(SystemModel& system,
                               const std::unordered_map<AttrId, AttrId>& alias_of);

 private:
  AttrId fresh_alias(AttrId original, ReliabilityRewriteResult& out);

  AttrId next_alias_;
};

}  // namespace remo
