#include "extensions/reliability.h"

#include <algorithm>

#include "common/sorted_vector.h"

namespace remo {

AttrId ReliabilityRewriter::fresh_alias(AttrId original,
                                        ReliabilityRewriteResult& out) {
  const AttrId alias = next_alias_++;
  out.alias_of[alias] = original;
  return alias;
}

ReliabilityRewriteResult ReliabilityRewriter::rewrite(
    const std::vector<MonitoringTask>& tasks) {
  ReliabilityRewriteResult out;
  for (const auto& task : tasks) {
    switch (task.reliability) {
      case ReliabilityMode::kNone: {
        out.tasks.push_back(task);
        break;
      }
      case ReliabilityMode::kSSDP: {
        // Replica 1 is the original task itself.
        MonitoringTask base = task;
        base.reliability = ReliabilityMode::kNone;
        out.tasks.push_back(base);
        // Replicas 2..r use alias attributes; all copies of one attribute
        // (original + aliases) are pairwise conflicting.
        std::vector<std::vector<AttrId>> copies;  // per original attr
        copies.reserve(task.attrs.size());
        for (AttrId a : task.attrs) copies.push_back({a});
        for (std::uint32_t r = 2; r <= std::max<std::uint32_t>(task.replicas, 1);
             ++r) {
          MonitoringTask replica = base;
          replica.attrs.clear();
          for (std::size_t i = 0; i < task.attrs.size(); ++i) {
            const AttrId alias = fresh_alias(task.attrs[i], out);
            replica.attrs.push_back(alias);
            copies[i].push_back(alias);
          }
          sort_unique(replica.attrs);
          out.tasks.push_back(std::move(replica));
        }
        for (const auto& group : copies)
          for (std::size_t i = 0; i < group.size(); ++i)
            for (std::size_t j = i + 1; j < group.size(); ++j)
              out.conflicts.forbid(group[i], group[j]);
        break;
      }
      case ReliabilityMode::kDSDP: {
        if (task.identical_groups.empty() || task.attrs.empty()) {
          MonitoringTask base = task;
          base.reliability = ReliabilityMode::kNone;
          out.tasks.push_back(std::move(base));
          break;
        }
        // k = min |N(v_i)| bounds how many distinct-source replicas exist.
        std::size_t k = task.identical_groups.front().size();
        for (const auto& g : task.identical_groups) k = std::min(k, g.size());
        k = std::min<std::size_t>(k, std::max<std::uint32_t>(task.replicas, 1));
        // DSDP is defined for a single metric observed by node groups; for
        // multi-attribute tasks we replicate each attribute the same way.
        std::vector<std::vector<AttrId>> copies;
        copies.reserve(task.attrs.size());
        for (AttrId a : task.attrs) copies.push_back({a});
        for (std::size_t r = 0; r < k; ++r) {
          MonitoringTask replica;
          replica.frequency = task.frequency;
          replica.aggregation = task.aggregation;
          replica.top_k = task.top_k;
          for (const auto& g : task.identical_groups)
            replica.nodes.push_back(g[r]);
          sort_unique(replica.nodes);
          for (std::size_t i = 0; i < task.attrs.size(); ++i) {
            const AttrId id =
                r == 0 ? task.attrs[i] : fresh_alias(task.attrs[i], out);
            replica.attrs.push_back(id);
            if (r > 0) copies[i].push_back(id);
          }
          sort_unique(replica.attrs);
          out.tasks.push_back(std::move(replica));
        }
        for (const auto& group : copies)
          for (std::size_t i = 0; i < group.size(); ++i)
            for (std::size_t j = i + 1; j < group.size(); ++j)
              out.conflicts.forbid(group[i], group[j]);
        break;
      }
    }
  }
  return out;
}

void ReliabilityRewriter::register_aliases(
    SystemModel& system, const std::unordered_map<AttrId, AttrId>& alias_of) {
  for (NodeId n = 1; n <= system.num_nodes(); ++n) {
    std::vector<AttrId> attrs = system.observable(n);
    bool changed = false;
    for (const auto& [alias, original] : alias_of) {
      if (set_contains(system.observable(n), original)) {
        attrs.push_back(alias);
        changed = true;
      }
    }
    if (changed) system.set_observable(n, std::move(attrs));
  }
}

}  // namespace remo
