// Derives the planner's per-attribute specs (funnels + frequency weights)
// from the task set — the glue for the Sec. 6.1 / 6.3 extensions.
//
// Aggregation awareness: an attribute gets a non-holistic funnel only when
// *every* task requesting it agrees on the aggregation type (otherwise the
// holistic upper bound keeps every consumer satisfiable).
//
// Frequency awareness: weight(attr) = freq(attr) / freq_max, where
// freq(attr) is the fastest rate any task requests for it (piggybacked
// slower tasks ride along, Sec. 6.3).
#pragma once

#include "planner/attr_specs.h"
#include "task/task_manager.h"

namespace remo {

AttrSpecTable derive_attr_specs(const TaskManager& tasks, bool aggregation_aware,
                                bool frequency_aware);

}  // namespace remo
