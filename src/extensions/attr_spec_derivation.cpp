#include "extensions/attr_spec_derivation.h"

#include <algorithm>
#include <map>
#include <optional>

namespace remo {

AttrSpecTable derive_attr_specs(const TaskManager& tasks, bool aggregation_aware,
                                bool frequency_aware) {
  AttrSpecTable specs;

  // Per attribute: the agreed aggregation (nullopt = disagreement =>
  // holistic) and the fastest requested frequency.
  struct Info {
    std::optional<AggType> agg;
    std::uint32_t top_k = 10;
    bool agg_conflict = false;
    double freq = 0.0;
  };
  std::map<AttrId, Info> info;
  double freq_max = 0.0;

  for (const auto& [id, t] : tasks.tasks()) {
    freq_max = std::max(freq_max, t.frequency);
    for (AttrId a : t.attrs) {
      auto& e = info[a];
      e.freq = std::max(e.freq, t.frequency);
      if (!e.agg.has_value()) {
        e.agg = t.aggregation;
        e.top_k = t.top_k;
      } else if (*e.agg != t.aggregation ||
                 (t.aggregation == AggType::kTopK && e.top_k != t.top_k)) {
        e.agg_conflict = true;
      }
    }
  }

  for (const auto& [attr, e] : info) {
    if (aggregation_aware && e.agg.has_value() && !e.agg_conflict &&
        *e.agg != AggType::kHolistic)
      specs.set_funnel(attr, FunnelSpec(*e.agg, e.top_k));
    if (frequency_aware && freq_max > 0.0 && e.freq > 0.0 && e.freq < freq_max)
      specs.set_weight(attr, e.freq / freq_max);
  }
  return specs;
}

}  // namespace remo
