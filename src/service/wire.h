// Versioned wire format for the monitoring daemon (DESIGN.md §14):
//   - a length-prefixed little-endian binary record stream ("REMO" magic,
//     u16 version, then [u8 type][u32 length][payload] records) carrying
//     the per-epoch collected-pair batches and snapshots — the daemon's
//     machine-readable output and restart image;
//   - plain-text exporters in the style of cctools' resource_monitor: a
//     one-object JSON summary and a whitespace-separated time series with
//     a `#`-prefixed header line, one sample per epoch.
//
// Reader failure model: a truncated or corrupt stream flips the reader
// into a sticky failed state (ok() == false) and further reads return
// zeros — callers check ok() once at the end instead of guarding every
// field, and a malformed input never aborts the process from inside the
// decoder (the *callers* decide whether that is a contract violation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace remo::service::wire {

/// "REMO" in little-endian byte order.
inline constexpr std::uint32_t kMagic = 0x4F4D4552u;
inline constexpr std::uint16_t kVersion = 1;

enum class RecordType : std::uint8_t {
  kStreamHeader = 1,  ///< reserved (the header is written raw, not framed)
  kEpochPairs = 2,    ///< one epoch's collected (node, attr, value) batch
  kStatus = 3,        ///< merged Status roll-up for one epoch
  kSnapshot = 4,      ///< full daemon image (service/snapshot.h payload)
};

/// Append-only little-endian encoder. Multi-byte integers are emitted
/// byte-by-byte (no reinterpret_cast), so the encoding is identical on
/// any host; doubles travel as their IEEE-754 bit pattern.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void bytes(const void* data, std::size_t size);
  /// u32 length + raw bytes.
  void str(const std::string& s);

  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  void bytes(void* out, std::size_t size);
  std::string str();
  /// Advances without copying; returns the payload start (null on failure).
  const std::uint8_t* skip(std::size_t size);

  bool ok() const noexcept { return ok_; }
  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool at_end() const noexcept { return pos_ == size_; }

 private:
  bool take(std::size_t n);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- record framing --------------------------------------------------------

/// Writes the stream header (magic + version). Every daemon output stream
/// and snapshot image starts with one.
void begin_stream(Writer& w);
/// Consumes and verifies the stream header; false on a truncated header
/// (reader failed), a wrong magic, or an unsupported version (the reader
/// stays ok — the bytes parsed, they just weren't ours).
bool read_stream_header(Reader& r);

/// Appends one framed record: [u8 type][u32 payload length][payload].
void append_record(Writer& w, RecordType type,
                   const std::vector<std::uint8_t>& payload);

struct Record {
  RecordType type = RecordType::kStreamHeader;
  const std::uint8_t* payload = nullptr;  ///< borrowed from the reader's buffer
  std::size_t size = 0;
};

/// Reads the next framed record (borrowing its payload). False at a clean
/// end of stream or on a malformed frame — distinguish via r.ok().
bool next_record(Reader& r, Record& out);

// ---- epoch records ---------------------------------------------------------

/// One collected pair with the freshest value the daemon has seen for it.
struct WirePair {
  NodeId node = kNoNode;
  AttrId attr = 0;
  double value = 0.0;

  bool operator==(const WirePair&) const = default;
};

struct EpochPairsRecord {
  std::uint64_t epoch = 0;
  std::uint64_t values_applied = 0;  ///< values ingested during this epoch
  std::vector<WirePair> pairs;       ///< sorted by (node, attr)

  bool operator==(const EpochPairsRecord&) const = default;
};

std::vector<std::uint8_t> encode_epoch_pairs(const EpochPairsRecord& rec);
/// Decodes a kEpochPairs payload; false on malformed input.
bool decode_epoch_pairs(const std::uint8_t* payload, std::size_t size,
                        EpochPairsRecord& out);

// ---- resource_monitor-style text exporters ---------------------------------

/// One sample of the daemon's retained time series.
struct SeriesSample {
  std::uint64_t epoch = 0;
  std::uint64_t values_applied = 0;
  std::uint64_t pairs_collected = 0;
  double coverage = 0.0;
  double message_volume = 0.0;
  std::uint64_t queue_depth = 0;
  std::uint64_t values_shed = 0;
};

/// `#`-prefixed column header, newline-terminated.
std::string series_header();
/// One whitespace-separated sample line, newline-terminated.
std::string series_line(const SeriesSample& s);

/// Minimal JSON string escaping for the summary exporter.
std::string json_escape(const std::string& s);

}  // namespace remo::service::wire
