#include "service/snapshot.h"

#include <map>
#include <utility>

#include "common/check.h"

namespace remo::service {

using wire::Reader;
using wire::Writer;

void encode_task(Writer& w, const MonitoringTask& t) {
  w.u32(t.id);
  w.u32(static_cast<std::uint32_t>(t.attrs.size()));
  for (AttrId a : t.attrs) w.u32(a);
  w.u32(static_cast<std::uint32_t>(t.nodes.size()));
  for (NodeId n : t.nodes) w.u32(n);
  w.f64(t.frequency);
  w.u8(static_cast<std::uint8_t>(t.aggregation));
  w.u32(t.top_k);
  w.u8(static_cast<std::uint8_t>(t.reliability));
  w.u32(t.replicas);
  w.u32(static_cast<std::uint32_t>(t.identical_groups.size()));
  for (const auto& group : t.identical_groups) {
    w.u32(static_cast<std::uint32_t>(group.size()));
    for (NodeId n : group) w.u32(n);
  }
  w.u32(t.origin_id);
  w.u32(t.home_shard);
}

MonitoringTask decode_task(Reader& r) {
  MonitoringTask t;
  t.id = r.u32();
  t.attrs.resize(r.u32());
  for (AttrId& a : t.attrs) a = r.u32();
  t.nodes.resize(r.u32());
  for (NodeId& n : t.nodes) n = r.u32();
  t.frequency = r.f64();
  t.aggregation = static_cast<AggType>(r.u8());
  t.top_k = r.u32();
  t.reliability = static_cast<ReliabilityMode>(r.u8());
  t.replicas = r.u32();
  t.identical_groups.resize(r.u32());
  for (auto& group : t.identical_groups) {
    group.resize(r.u32());
    for (NodeId& n : group) n = r.u32();
  }
  t.origin_id = r.u32();
  t.home_shard = r.u32();
  return t;
}

namespace {

void encode_tree(Writer& w, const MonitoringTree& tree) {
  const auto& specs = tree.attr_specs();
  w.u32(static_cast<std::uint32_t>(specs.size()));
  for (const TreeAttrSpec& s : specs) {
    w.u32(s.attr);
    w.u8(static_cast<std::uint8_t>(s.funnel.type()));
    w.u32(s.funnel.k());
    w.f64(s.weight);
  }
  w.f64(tree.avail(kCollectorId));
  w.f64(tree.cost().per_message);
  w.f64(tree.cost().per_value);

  // Members in insertion order — the plan-affecting iteration order the
  // restore must reproduce bit-exactly.
  const auto& members = tree.members();
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (NodeId m : members) {
    w.u32(m);
    w.u32(tree.parent(m));
    w.f64(tree.avail(m));
    for (const std::uint32_t count : tree.local_counts(m)) w.u32(count);
  }
  // Child lists (collector first, then members in insertion order): the
  // structural source the restore attaches from, parents-first.
  w.u32(static_cast<std::uint32_t>(members.size() + 1));
  const auto write_children = [&](NodeId v) {
    const auto& kids = tree.children(v);
    w.u32(v);
    w.u32(static_cast<std::uint32_t>(kids.size()));
    for (NodeId c : kids) w.u32(c);
  };
  write_children(kCollectorId);
  for (NodeId m : members) write_children(m);
}

struct MemberRec {
  Capacity avail = 0;
  std::vector<std::uint32_t> local;
};

bool decode_tree(Reader& r, std::vector<TreeEntry>& entries,
                 std::vector<AttrId> attrs, std::size_t offered,
                 std::size_t collected) {
  std::vector<TreeAttrSpec> specs(r.u32());
  for (TreeAttrSpec& s : specs) {
    s.attr = r.u32();
    const auto type = static_cast<AggType>(r.u8());
    const std::uint32_t k = r.u32();
    s.funnel = FunnelSpec(type, k);
    s.weight = r.f64();
  }
  const Capacity collector_avail = r.f64();
  const double per_message = r.f64();
  const double per_value = r.f64();
  if (!r.ok()) return false;

  std::vector<NodeId> member_order(r.u32());
  std::map<NodeId, MemberRec> recs;
  for (NodeId& m : member_order) {
    m = r.u32();
    r.u32();  // parent — redundant with the child lists below
    MemberRec rec;
    rec.avail = r.f64();
    rec.local.resize(specs.size());
    for (std::uint32_t& v : rec.local) v = r.u32();
    recs.emplace(m, std::move(rec));
  }
  std::vector<std::pair<NodeId, std::vector<NodeId>>> children(r.u32());
  std::map<NodeId, const std::vector<NodeId>*> children_of;
  for (auto& [vertex, kids] : children) {
    vertex = r.u32();
    kids.resize(r.u32());
    for (NodeId& c : kids) c = r.u32();
    children_of[vertex] = &kids;
  }
  if (!r.ok()) return false;

  MonitoringTree tree(std::move(specs), collector_avail,
                      CostModel(per_message, per_value));
  // Re-attach parents-first (BFS over the captured child lists). Every
  // intermediate state is a sub-forest of the captured tree, so its loads
  // are bounded by the captured — feasible — ones and attach cannot fail.
  std::vector<NodeId> frontier{kCollectorId};
  std::size_t attached = 0;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const NodeId v = frontier[i];
    const auto kids = children_of.find(v);
    if (kids == children_of.end()) continue;
    for (NodeId c : *kids->second) {
      const auto rec = recs.find(c);
      REMO_ASSERT(rec != recs.end(), "snapshot tree child ", c,
                  " has no member record");
      tree.attach(BuildItem{c, rec->second.local, rec->second.avail}, v);
      ++attached;
      frontier.push_back(c);
    }
  }
  REMO_ASSERT(attached == member_order.size(), "snapshot tree reattached ",
              attached, " of ", member_order.size(),
              " members — child lists disagree with the member list");
  tree.restore_iteration_order(member_order, children);

  TreeEntry entry{std::move(attrs), std::move(tree), offered, collected};
  entries.push_back(std::move(entry));
  return true;
}

void encode_repair(Writer& w, const RepairReport& rr) {
  w.u64(rr.outages_detected);
  w.u64(rr.recoveries_detected);
  w.u64(rr.repair_passes);
  w.u64(rr.repair_messages);
  w.u64(rr.orphans_reattached);
  w.u64(rr.suspects_parked);
  w.u64(rr.members_dropped);
  w.u64(rr.pairs_dropped);
  w.u64(rr.replans_after_outage);
  w.u64(rr.detect_lag_sum);
  w.u64(rr.repair_lag_sum);
}

RepairReport decode_repair(Reader& r) {
  RepairReport rr;
  rr.outages_detected = r.u64();
  rr.recoveries_detected = r.u64();
  rr.repair_passes = r.u64();
  rr.repair_messages = r.u64();
  rr.orphans_reattached = r.u64();
  rr.suspects_parked = r.u64();
  rr.members_dropped = r.u64();
  rr.pairs_dropped = r.u64();
  rr.replans_after_outage = r.u64();
  rr.detect_lag_sum = r.u64();
  rr.repair_lag_sum = r.u64();
  return rr;
}

void encode_planner_state(Writer& w, const MonitoringSystem::PlannerState& st) {
  encode_topology(w, st.topology);
  w.u32(static_cast<std::uint32_t>(st.adjustment_stamps.size()));
  for (const auto& [attrs, stamp] : st.adjustment_stamps) {
    w.u32(static_cast<std::uint32_t>(attrs.size()));
    for (AttrId a : attrs) w.u32(a);
    w.f64(stamp);
  }
  w.f64(st.init_time);
  w.f64(st.replan_cost_estimate);
  w.str(st.constraint_signature);
}

bool decode_planner_state(Reader& r, MonitoringSystem::PlannerState& st) {
  if (!decode_topology(r, st.topology)) return false;
  const std::uint32_t nstamps = r.u32();
  for (std::uint32_t i = 0; i < nstamps && r.ok(); ++i) {
    std::vector<AttrId> attrs(r.u32());
    for (AttrId& a : attrs) a = r.u32();
    const double stamp = r.f64();
    st.adjustment_stamps.emplace(std::move(attrs), stamp);
  }
  st.init_time = r.f64();
  st.replan_cost_estimate = r.f64();
  st.constraint_signature = r.str();
  return r.ok();
}

}  // namespace

void encode_topology(Writer& w, const Topology& topo) {
  w.u64(topo.total_pairs());
  w.u32(static_cast<std::uint32_t>(topo.entries().size()));
  for (const TreeEntry& e : topo.entries()) {
    w.u32(static_cast<std::uint32_t>(e.attrs.size()));
    for (AttrId a : e.attrs) w.u32(a);
    w.u64(e.offered_pairs);
    w.u64(e.collected_pairs);
    encode_tree(w, e.tree);
  }
}

bool decode_topology(Reader& r, Topology& out) {
  const std::size_t total_pairs = r.u64();
  const std::uint32_t nentries = r.u32();
  if (!r.ok()) return false;
  out.mutable_entries().clear();
  out.mutable_entries().reserve(nentries);
  for (std::uint32_t i = 0; i < nentries; ++i) {
    std::vector<AttrId> attrs(r.u32());
    for (AttrId& a : attrs) a = r.u32();
    const std::size_t offered = r.u64();
    const std::size_t collected = r.u64();
    if (!r.ok()) return false;
    if (!decode_tree(r, out.mutable_entries(), std::move(attrs), offered,
                     collected))
      return false;
  }
  out.set_total_pairs(total_pairs);
  return true;
}

void encode_system(Writer& w, federation::FederatedMonitoringSystem& sys,
                   double now) {
  w.u32(static_cast<std::uint32_t>(sys.system().num_nodes()));
  w.u32(static_cast<std::uint32_t>(sys.num_shards()));

  // Facade routing metadata.
  w.u32(sys.next_task_id());
  w.u32(static_cast<std::uint32_t>(sys.routes().size()));
  for (const auto& [id, route] : sys.routes()) {
    encode_task(w, route.user);
    w.u32(static_cast<std::uint32_t>(route.subtasks.size()));
    for (const auto& sub : route.subtasks) {
      w.u32(sub.shard);
      w.u32(sub.local_id);
      w.u64(sub.node_count);
    }
  }
  const auto& rs = sys.routing();
  w.u64(rs.tasks_submitted);
  w.u64(rs.single_shard_tasks);
  w.u64(rs.cross_shard_tasks);
  w.u64(rs.subtasks_routed);
  w.u64(rs.subtasks_active);
  w.u64(rs.routed_node_refs);

  // Shard cores.
  for (std::size_t k = 0; k < sys.num_shards(); ++k) {
    MonitoringSystem& shard = sys.shard(k);
    w.u32(shard.next_task_id());
    w.u32(static_cast<std::uint32_t>(shard.user_tasks().size()));
    for (const auto& [id, t] : shard.user_tasks()) encode_task(w, t);
    encode_planner_state(w, shard.planner_state(now));
    const auto counters = shard.adaptation_counters();
    w.u64(counters.adaptations);
    w.u64(counters.adaptation_messages);
    w.u64(counters.delta_applies);
    encode_repair(w, shard.repair_report());
  }
}

bool decode_system(Reader& r, federation::FederatedMonitoringSystem& sys) {
  const std::uint32_t nodes = r.u32();
  const std::uint32_t shards = r.u32();
  if (!r.ok()) return false;
  REMO_ASSERT(nodes == sys.system().num_nodes(),
              "snapshot was captured over ", nodes,
              " nodes but the restoring system has ", sys.system().num_nodes());
  REMO_ASSERT(shards == sys.num_shards(), "snapshot was captured over ",
              shards, " shards but the restoring federation has ",
              sys.num_shards());

  const TaskId next_id = r.u32();
  const std::uint32_t nroutes = r.u32();
  std::map<TaskId, federation::FederatedMonitoringSystem::Route> routes;
  for (std::uint32_t i = 0; i < nroutes && r.ok(); ++i) {
    federation::FederatedMonitoringSystem::Route route;
    route.user = decode_task(r);
    route.subtasks.resize(r.u32());
    for (auto& sub : route.subtasks) {
      sub.shard = r.u32();
      sub.local_id = r.u32();
      sub.node_count = r.u64();
    }
    routes.emplace(route.user.id, std::move(route));
  }
  federation::FederatedMonitoringSystem::RoutingStats rs;
  rs.tasks_submitted = r.u64();
  rs.single_shard_tasks = r.u64();
  rs.cross_shard_tasks = r.u64();
  rs.subtasks_routed = r.u64();
  rs.subtasks_active = r.u64();
  rs.routed_node_refs = r.u64();
  if (!r.ok()) return false;

  for (std::size_t k = 0; k < sys.num_shards(); ++k) {
    const TaskId shard_next = r.u32();
    const std::uint32_t ntasks = r.u32();
    std::map<TaskId, MonitoringTask> tasks;
    for (std::uint32_t i = 0; i < ntasks && r.ok(); ++i) {
      MonitoringTask t = decode_task(r);
      const TaskId id = t.id;
      tasks.emplace(id, std::move(t));
    }
    MonitoringSystem::PlannerState state;
    if (!decode_planner_state(r, state)) return false;
    MonitoringSystem::AdaptationCounters counters;
    counters.adaptations = r.u64();
    counters.adaptation_messages = r.u64();
    counters.delta_applies = r.u64();
    const RepairReport repair = decode_repair(r);
    if (!r.ok()) return false;

    MonitoringSystem& shard = sys.shard(k);
    shard.restore_tasks(std::move(tasks), shard_next);
    shard.restore_planner(std::move(state));
    shard.restore_counters(counters, repair);
  }
  sys.restore_routes(std::move(routes), next_id, rs);
  return r.ok();
}

std::vector<std::uint8_t> capture(federation::FederatedMonitoringSystem& sys,
                                  double now) {
  Writer payload;
  encode_system(payload, sys, now);
  Writer w;
  wire::begin_stream(w);
  wire::append_record(w, wire::RecordType::kSnapshot, payload.buffer());
  return w.take();
}

bool restore(const std::vector<std::uint8_t>& image,
             federation::FederatedMonitoringSystem& sys) {
  Reader r(image);
  if (!wire::read_stream_header(r)) return false;
  wire::Record rec;
  if (!wire::next_record(r, rec) || rec.type != wire::RecordType::kSnapshot)
    return false;
  Reader payload(rec.payload, rec.size);
  return decode_system(payload, sys);
}

}  // namespace remo::service
