#include "service/message_bus.h"

#include <algorithm>

#include "common/check.h"

namespace remo::service {

const char* to_string(CommandKind k) noexcept {
  switch (k) {
    case CommandKind::kValues: return "values";
    case CommandKind::kAddTask: return "add_task";
    case CommandKind::kRemoveTask: return "remove_task";
    case CommandKind::kModifyTask: return "modify_task";
    case CommandKind::kControl: return "control";
  }
  return "?";
}

const char* to_string(Admission a) noexcept {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kShedRateLimit: return "shed_rate_limit";
    case Admission::kShedBackpressure: return "shed_backpressure";
    case Admission::kRejectedFull: return "rejected_full";
  }
  return "?";
}

MessageBus::MessageBus(BusOptions opts) : opts_(opts) {
  REMO_ASSERT(opts_.capacity > 0, "bus capacity must be positive");
  opts_.shed_watermark = std::min(opts_.shed_watermark, opts_.capacity);
}

void MessageBus::set_producer_limits(std::uint32_t producer,
                                     ProducerLimits limits) {
  const MutexLock lock(mutex_);
  Bucket& b = buckets_[producer];
  b.limits = limits;
  b.tokens = limits.burst;
  b.initialized = false;  // first push re-anchors last_refill to its `now`
}

Admission MessageBus::push(Command cmd, double now) {
  const MutexLock lock(mutex_);
  ++stats_.pushed;
  const std::size_t batch = cmd.values.size();
  const bool low_priority = cmd.kind == CommandKind::kValues;

  const auto shed = [&](Admission verdict, std::uint64_t* counter) {
    ++*counter;
    stats_.values_shed += batch;
    return verdict;
  };

  if (queue_.size() >= opts_.capacity)
    return shed(Admission::kRejectedFull, &stats_.rejected_full);

  // Rate limit before the watermark: an over-budget producer is told so
  // even while the queue is healthy, so it backs off before contributing
  // to congestion. Only value traffic draws tokens — churn and control
  // commands are rare and must not starve behind a value quota.
  if (low_priority) {
    auto it = buckets_.find(cmd.producer);
    if (it != buckets_.end() && it->second.limits.rate > 0.0) {
      Bucket& b = it->second;
      if (!b.initialized) {
        b.initialized = true;
        b.last_refill = now;
        b.tokens = b.limits.burst;
      }
      const double elapsed = std::max(0.0, now - b.last_refill);
      b.tokens = std::min(b.limits.burst, b.tokens + elapsed * b.limits.rate);
      b.last_refill = now;
      const double cost = static_cast<double>(batch);
      if (b.tokens < cost)
        return shed(Admission::kShedRateLimit, &stats_.shed_rate_limit);
      b.tokens -= cost;
    }
    if (queue_.size() >= opts_.shed_watermark)
      return shed(Admission::kShedBackpressure, &stats_.shed_backpressure);
  }

  queued_values_ += batch;
  stats_.values_accepted += batch;
  ++stats_.accepted;
  queue_.push_back(std::move(cmd));
  stats_.depth_peak = std::max<std::uint64_t>(stats_.depth_peak, queue_.size());
  return Admission::kAccepted;
}

std::size_t MessageBus::drain(std::vector<Command>& out,
                              std::size_t value_budget) {
  const MutexLock lock(mutex_);
  std::size_t drained = 0;
  std::size_t values = 0;
  while (!queue_.empty()) {
    const std::size_t batch = queue_.front().values.size();
    if (value_budget > 0 && drained > 0 && values + batch > value_budget) break;
    values += batch;
    REMO_DCHECK(queued_values_ >= batch, "queued-value accounting underflow");
    queued_values_ -= batch;
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
    ++drained;
  }
  return drained;
}

std::size_t MessageBus::depth() const {
  const MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t MessageBus::queued_values() const {
  const MutexLock lock(mutex_);
  return queued_values_;
}

BusStats MessageBus::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

std::vector<Command> MessageBus::export_queue() const {
  const MutexLock lock(mutex_);
  return {queue_.begin(), queue_.end()};
}

std::vector<MessageBus::BucketState> MessageBus::export_buckets() const {
  const MutexLock lock(mutex_);
  std::vector<BucketState> out;
  out.reserve(buckets_.size());
  for (const auto& [producer, b] : buckets_)
    out.push_back(
        BucketState{producer, b.limits, b.tokens, b.last_refill, b.initialized});
  return out;
}

void MessageBus::restore(std::vector<Command> queue,
                         std::vector<BucketState> buckets, BusStats stats) {
  const MutexLock lock(mutex_);
  queue_.assign(std::make_move_iterator(queue.begin()),
                std::make_move_iterator(queue.end()));
  queued_values_ = 0;
  for (const Command& c : queue_) queued_values_ += c.values.size();
  buckets_.clear();
  for (const BucketState& s : buckets) {
    Bucket b;
    b.limits = s.limits;
    b.tokens = s.tokens;
    b.last_refill = s.last_refill;
    b.initialized = s.initialized;
    buckets_.emplace(s.producer, b);
  }
  stats_ = stats;
}

}  // namespace remo::service
