#include "service/wire.h"

#include <bit>
#include <cstring>
#include <sstream>

namespace remo::service::wire {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

bool Reader::take(std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!take(2)) return 0;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(data_[pos_++]) << (8 * i)));
  return v;
}

std::uint32_t Reader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

void Reader::bytes(void* out, std::size_t size) {
  if (!take(size)) {
    std::memset(out, 0, size);
    return;
  }
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
}

std::string Reader::str() {
  const std::uint32_t len = u32();
  if (!take(len)) return {};
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

const std::uint8_t* Reader::skip(std::size_t size) {
  if (!take(size)) return nullptr;
  const std::uint8_t* p = data_ + pos_;
  pos_ += size;
  return p;
}

void begin_stream(Writer& w) {
  w.u32(kMagic);
  w.u16(kVersion);
}

bool read_stream_header(Reader& r) {
  const std::uint32_t magic = r.u32();
  const std::uint16_t version = r.u16();
  if (!r.ok() || magic != kMagic || version != kVersion) return false;
  return true;
}

void append_record(Writer& w, RecordType type,
                   const std::vector<std::uint8_t>& payload) {
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload.data(), payload.size());
}

bool next_record(Reader& r, Record& out) {
  if (r.at_end() || !r.ok()) return false;
  const std::uint8_t type = r.u8();
  const std::uint32_t size = r.u32();
  const std::uint8_t* payload = r.skip(size);
  if (payload == nullptr) return false;
  out.type = static_cast<RecordType>(type);
  out.payload = payload;
  out.size = size;
  return true;
}

std::vector<std::uint8_t> encode_epoch_pairs(const EpochPairsRecord& rec) {
  Writer w;
  w.u64(rec.epoch);
  w.u64(rec.values_applied);
  w.u32(static_cast<std::uint32_t>(rec.pairs.size()));
  for (const WirePair& p : rec.pairs) {
    w.u32(p.node);
    w.u32(p.attr);
    w.f64(p.value);
  }
  return w.take();
}

bool decode_epoch_pairs(const std::uint8_t* payload, std::size_t size,
                        EpochPairsRecord& out) {
  Reader r(payload, size);
  out.epoch = r.u64();
  out.values_applied = r.u64();
  const std::uint32_t n = r.u32();
  out.pairs.clear();
  out.pairs.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    WirePair p;
    p.node = r.u32();
    p.attr = r.u32();
    p.value = r.f64();
    out.pairs.push_back(p);
  }
  return r.ok() && r.at_end();
}

std::string series_header() {
  return "#epoch values_applied pairs_collected coverage message_volume "
         "queue_depth values_shed\n";
}

std::string series_line(const SeriesSample& s) {
  std::ostringstream os;
  os << s.epoch << ' ' << s.values_applied << ' ' << s.pairs_collected << ' '
     << s.coverage << ' ' << s.message_volume << ' ' << s.queue_depth << ' '
     << s.values_shed << '\n';
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace remo::service::wire
