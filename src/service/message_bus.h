// Bounded multi-producer command bus — the async ingest edge of the
// monitoring daemon (DESIGN.md §14). Producers (application threads, node
// agents, operators) push attribute-value batches, task churn, and control
// commands; the daemon's run loop drains them once per epoch, so a burst
// of producers costs the planner one adaptation, exactly like the batch
// facade's lazy replan — which is what keeps daemon mode bit-identical to
// batch mode.
//
// Admission control is first-class, not an afterthought:
//   - per-producer token buckets rate-limit value traffic (refilled on the
//     caller's clock, so virtual-time tests and benches are deterministic);
//   - a queue-depth shed watermark drops *low-priority* commands (value
//     batches) while the daemon is behind, keeping room for task churn and
//     control traffic, which is only refused when the bus is truly full;
//   - every decision is returned to the producer (Admission) and counted
//     (BusStats), so shedding is observable, never silent.
//
// Thread model: push() is safe from any thread (one mutex; the critical
// section is a deque append plus counter updates). drain() is meant to be
// called by the single consumer — the daemon loop — but is likewise
// locked, so a TSan-exercised producer/consumer interleaving is race-free.
// Determinism note: with a single producer thread (or externally ordered
// producers), admission outcomes and drain order are pure functions of the
// (command, now) sequence — no wall clock, no hashing.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/types.h"
#include "task/task.h"

namespace remo::service {

/// One observed attribute value, in global node ids.
struct ValueUpdate {
  NodeId node = kNoNode;
  AttrId attr = 0;
  double value = 0.0;

  bool operator==(const ValueUpdate&) const = default;
};

enum class CommandKind : std::uint8_t {
  kValues,      ///< a batch of ValueUpdates (low priority, sheddable)
  kAddTask,     ///< task churn (high priority)
  kRemoveTask,
  kModifyTask,
  kControl,
};

enum class ControlKind : std::uint8_t {
  kReplan,    ///< force a full from-scratch replan at the next epoch
  kSnapshot,  ///< capture a snapshot at the next epoch boundary
};

const char* to_string(CommandKind k) noexcept;

struct Command {
  CommandKind kind = CommandKind::kValues;
  /// Producer identity for rate limiting (0 = anonymous/unlimited unless
  /// limits were registered for 0).
  std::uint32_t producer = 0;
  std::vector<ValueUpdate> values;     ///< kValues payload
  MonitoringTask task;                 ///< kAddTask / kModifyTask payload
  TaskId task_id = 0;                  ///< kRemoveTask payload
  ControlKind control = ControlKind::kReplan;  ///< kControl payload
  /// Producer-side enqueue stamp on the daemon's virtual clock — the
  /// start of the ingest-to-collected latency measurement.
  double enqueued_at = 0.0;
};

/// Token-bucket limit for one producer's value traffic: up to `rate`
/// values per unit time sustained, bursts of up to `burst` values.
/// rate <= 0 means unlimited.
struct ProducerLimits {
  double rate = 0.0;
  double burst = 0.0;
};

struct BusOptions {
  /// Hard bound on queued commands; pushes beyond it are rejected.
  std::size_t capacity = 4096;
  /// Queue depth at which low-priority commands start shedding (clamped
  /// to capacity). High-priority traffic still flows until capacity.
  std::size_t shed_watermark = 3072;
};

/// Outcome of a push, returned to the producer.
enum class Admission : std::uint8_t {
  kAccepted,
  kShedRateLimit,     ///< producer exceeded its token bucket
  kShedBackpressure,  ///< low-priority command above the shed watermark
  kRejectedFull,      ///< bus at capacity (any priority)
};

const char* to_string(Admission a) noexcept;

inline bool admitted(Admission a) noexcept { return a == Admission::kAccepted; }

struct BusStats {
  std::uint64_t pushed = 0;            ///< push() calls
  std::uint64_t accepted = 0;          ///< commands enqueued
  std::uint64_t values_accepted = 0;   ///< values inside accepted batches
  std::uint64_t shed_rate_limit = 0;   ///< commands shed by token buckets
  std::uint64_t shed_backpressure = 0; ///< commands shed at the watermark
  std::uint64_t rejected_full = 0;     ///< commands refused at capacity
  std::uint64_t values_shed = 0;       ///< values inside shed/rejected batches
  std::uint64_t depth_peak = 0;        ///< max queue depth ever observed
};

class MessageBus {
 public:
  explicit MessageBus(BusOptions opts = {});

  /// Registers (or replaces) `producer`'s rate limit. Unregistered
  /// producers are unlimited.
  void set_producer_limits(std::uint32_t producer, ProducerLimits limits)
      REMO_EXCLUDES(mutex_);

  /// Admission-controlled enqueue; `now` is the producer's clock (the
  /// daemon's virtual time), feeding the token buckets.
  Admission push(Command cmd, double now) REMO_EXCLUDES(mutex_);

  /// Drains queued commands FIFO into `out` (appending). `value_budget`
  /// caps the total values drained this call: draining stops *before* a
  /// value batch that would exceed it — unless nothing was drained yet,
  /// so an oversized batch still makes progress. 0 = unlimited. Returns
  /// the number of commands drained.
  std::size_t drain(std::vector<Command>& out, std::size_t value_budget = 0)
      REMO_EXCLUDES(mutex_);

  std::size_t depth() const REMO_EXCLUDES(mutex_);
  /// Values queued but not yet drained — the daemon's deferral gauge.
  std::size_t queued_values() const REMO_EXCLUDES(mutex_);
  BusStats stats() const REMO_EXCLUDES(mutex_);
  const BusOptions& options() const noexcept { return opts_; }

  // ---- snapshot/restore (service/snapshot.h, DESIGN.md §14) -------------
  /// In-flight commands are daemon state: a snapshot that dropped them
  /// could not continue bit-identically (deferred values would vanish).
  struct BucketState {
    std::uint32_t producer = 0;
    ProducerLimits limits;
    double tokens = 0.0;
    double last_refill = 0.0;
    bool initialized = false;
  };
  std::vector<Command> export_queue() const REMO_EXCLUDES(mutex_);
  std::vector<BucketState> export_buckets() const REMO_EXCLUDES(mutex_);
  void restore(std::vector<Command> queue, std::vector<BucketState> buckets,
               BusStats stats) REMO_EXCLUDES(mutex_);

 private:
  struct Bucket {
    ProducerLimits limits;
    double tokens = 0.0;
    double last_refill = 0.0;
    bool initialized = false;
  };

  BusOptions opts_;
  /// One capability guards the whole bus: queue, value accounting, token
  /// buckets, and stats move together under every admission decision
  /// (DESIGN.md §16) — a partially-locked read could observe a queue that
  /// doesn't match its stats.
  mutable Mutex mutex_;
  std::deque<Command> queue_ REMO_GUARDED_BY(mutex_);
  std::size_t queued_values_ REMO_GUARDED_BY(mutex_) = 0;
  std::map<std::uint32_t, Bucket> buckets_ REMO_GUARDED_BY(mutex_);
  BusStats stats_ REMO_GUARDED_BY(mutex_);
};

}  // namespace remo::service
