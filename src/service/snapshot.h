// Snapshot/restore for the monitoring system (DESIGN.md §14): serializes
// everything plan-affecting — task sets, routing metadata, the deployed
// tree forest with its exact iteration order, and the adaptive planner's
// throttle bookkeeping (adjustment stamps, replan-cost EWMA) — into the
// wire format, such that a daemon restarted from the image continues
// BIT-IDENTICALLY to the one that was captured (property-tested over
// seeded churn sequences).
//
// What is deliberately NOT serialized:
//   - planner pair sets: restore re-derives them from the restored tasks
//     (rewrite + dedup), and MonitoringSystem::restore_planner REMO_VALIDATEs
//     that the rebuilt set matches the captured plan — the snapshot cannot
//     drift from the task set because it never stores both;
//   - evaluation-engine memo caches: cache hits are bit-identical to fresh
//     builds, so a cold cache affects speed, never plans;
//   - liveness-tracker runtime state: a restored daemon re-arms delivery
//     deadlines from scratch (documented restart semantics; the lifetime
//     RepairReport counters ARE carried).
//
// Capture is cheap and non-perturbing by construction: the daemon captures
// at epoch boundaries, where the facade is already planned (status() ran),
// so planner_state() never triggers a replan with a different clock than
// the run loop would have used.
#pragma once

#include <cstdint>
#include <vector>

#include "federation/federated_system.h"
#include "service/wire.h"

namespace remo::service {

/// Serializes the full federated system (routing + every shard core) into
/// `w`. `now` is the caller's planner clock, used only to settle any
/// pending lazy replan before capture (a no-op at daemon epoch
/// boundaries).
void encode_system(wire::Writer& w, federation::FederatedMonitoringSystem& sys,
                   double now);

/// Restores `sys` — freshly constructed with the same SystemModel and
/// options as the captured one — from a reader positioned at an
/// encode_system image. Returns false (and leaves the reader failed) on a
/// malformed image; aborts via REMO_ASSERT on a configuration mismatch
/// (wrong shard count / node universe).
bool decode_system(wire::Reader& r, federation::FederatedMonitoringSystem& sys);

/// Convenience whole-image helpers (stream header + one kSnapshot record)
/// for tests and tools. The daemon embeds encode/decode_system inside its
/// own image instead (it adds bus and clock state on top).
std::vector<std::uint8_t> capture(federation::FederatedMonitoringSystem& sys,
                                  double now);
bool restore(const std::vector<std::uint8_t>& image,
             federation::FederatedMonitoringSystem& sys);

// ---- building blocks (shared with the daemon's image) ----------------------

void encode_task(wire::Writer& w, const MonitoringTask& t);
MonitoringTask decode_task(wire::Reader& r);

void encode_topology(wire::Writer& w, const Topology& topo);
/// Rebuilds the forest: trees are re-attached parents-first from the
/// serialized child lists, then their member/child iteration orders are
/// restored bit-exactly (MonitoringTree::restore_iteration_order).
bool decode_topology(wire::Reader& r, Topology& out);

}  // namespace remo::service
