#include "service/daemon.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "service/snapshot.h"

namespace remo::service {

namespace {

/// Latency buckets in epochs (scaled by epoch_duration at registration):
/// the ingest-to-collected latency of a value deferred k epochs is
/// (k + 1) · epoch_duration, so the interesting resolution is small
/// integer multiples of the epoch, with a geometric tail for backlogs.
std::vector<double> latency_bounds(double epoch_duration) {
  std::vector<double> bounds;
  for (double b : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0,
                   48.0, 64.0, 96.0, 128.0})
    bounds.push_back(b * epoch_duration);
  return bounds;
}

void encode_command(wire::Writer& w, const Command& cmd) {
  w.u8(static_cast<std::uint8_t>(cmd.kind));
  w.u32(cmd.producer);
  w.u32(static_cast<std::uint32_t>(cmd.values.size()));
  for (const ValueUpdate& v : cmd.values) {
    w.u32(v.node);
    w.u32(v.attr);
    w.f64(v.value);
  }
  encode_task(w, cmd.task);
  w.u32(cmd.task_id);
  w.u8(static_cast<std::uint8_t>(cmd.control));
  w.f64(cmd.enqueued_at);
}

Command decode_command(wire::Reader& r) {
  Command cmd;
  cmd.kind = static_cast<CommandKind>(r.u8());
  cmd.producer = r.u32();
  cmd.values.resize(r.u32());
  for (ValueUpdate& v : cmd.values) {
    v.node = r.u32();
    v.attr = r.u32();
    v.value = r.f64();
  }
  cmd.task = decode_task(r);
  cmd.task_id = r.u32();
  cmd.control = static_cast<ControlKind>(r.u8());
  cmd.enqueued_at = r.f64();
  return cmd;
}

}  // namespace

MonitoringDaemon::MonitoringDaemon(SystemModel global, DaemonOptions options)
    : options_(std::move(options)),
      system_(std::move(global), options_.federation),
      bus_(options_.bus) {
  REMO_ASSERT(options_.epoch_duration > 0.0, "epoch duration must be positive");
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry_or_global(options_.metrics);
    metrics_.epochs = &reg.counter("service.epochs");
    metrics_.commands_applied = &reg.counter("service.commands_applied");
    metrics_.values_applied = &reg.counter("service.values_applied");
    metrics_.pairs_emitted = &reg.counter("service.pairs_emitted");
    metrics_.values_shed = &reg.counter("service.values_shed");
    metrics_.queue_depth = &reg.gauge("service.queue_depth");
    metrics_.queued_values = &reg.gauge("service.queued_values");
    metrics_.coverage = &reg.gauge("service.coverage");
    metrics_.ingest_to_collected =
        &reg.histogram("service.ingest_to_collected_seconds",
                       latency_bounds(options_.epoch_duration));
  }
}

Admission MonitoringDaemon::submit_values(std::uint32_t producer,
                                          std::vector<ValueUpdate> values) {
  Command cmd;
  cmd.kind = CommandKind::kValues;
  cmd.producer = producer;
  cmd.values = std::move(values);
  cmd.enqueued_at = now();
  return bus_.push(std::move(cmd), now());
}

Admission MonitoringDaemon::submit_add_task(MonitoringTask task) {
  Command cmd;
  cmd.kind = CommandKind::kAddTask;
  cmd.task = std::move(task);
  cmd.enqueued_at = now();
  return bus_.push(std::move(cmd), now());
}

Admission MonitoringDaemon::submit_remove_task(TaskId id) {
  Command cmd;
  cmd.kind = CommandKind::kRemoveTask;
  cmd.task_id = id;
  cmd.enqueued_at = now();
  return bus_.push(std::move(cmd), now());
}

Admission MonitoringDaemon::submit_modify_task(MonitoringTask task) {
  Command cmd;
  cmd.kind = CommandKind::kModifyTask;
  cmd.task = std::move(task);
  cmd.enqueued_at = now();
  return bus_.push(std::move(cmd), now());
}

Admission MonitoringDaemon::submit_control(ControlKind control) {
  Command cmd;
  cmd.kind = CommandKind::kControl;
  cmd.control = control;
  cmd.enqueued_at = now();
  return bus_.push(std::move(cmd), now());
}

void MonitoringDaemon::apply(Command& cmd, std::uint64_t& values_this_epoch) {
  ++stats_.commands_applied;
  switch (cmd.kind) {
    case CommandKind::kValues:
      for (const ValueUpdate& v : cmd.values) {
        if (v.node == kCollectorId || v.node > system_.system().num_nodes()) {
          ++stats_.values_invalid;
          continue;
        }
        const NodeAttrPair pair{v.node, v.attr};
        latest_values_[pair] = v.value;
        system_.on_delivery(pair, epoch_);
        pending_latency_.emplace_back(pair, cmd.enqueued_at);
        ++values_this_epoch;
        ++stats_.values_applied;
      }
      break;
    case CommandKind::kAddTask:
      cmd.task.id = 0;  // the facade assigns ids in apply (FIFO) order
      system_.add_task(std::move(cmd.task));
      ++stats_.tasks_added;
      break;
    case CommandKind::kRemoveTask:
      if (system_.remove_task(cmd.task_id)) ++stats_.tasks_removed;
      break;
    case CommandKind::kModifyTask:
      if (system_.modify_task(std::move(cmd.task))) ++stats_.tasks_modified;
      break;
    case CommandKind::kControl:
      if (cmd.control == ControlKind::kReplan) {
        system_.replan(now());
        ++stats_.replans_forced;
      } else {
        snapshot_requested_ = true;
      }
      break;
  }
}

void MonitoringDaemon::run_epoch() {
  ++epoch_;
  const double now_end = now();

  scratch_commands_.clear();
  bus_.drain(scratch_commands_, options_.max_values_per_epoch);
  std::uint64_t values_this_epoch = 0;
  for (Command& cmd : scratch_commands_) apply(cmd, values_this_epoch);
  stats_.value_epochs_deferred += bus_.queued_values();

  // Recovery step (per-shard no-op unless recovery is enabled), then the
  // lazy replan + emission — this is where the epoch's plan settles, so a
  // snapshot taken below never perturbs throttle decisions.
  system_.end_epoch(epoch_);
  emit_epoch(now_end, values_this_epoch);

  if (snapshot_requested_) {
    snapshot_requested_ = false;
    last_snapshot_ = snapshot();
    ++stats_.snapshots_taken;
  }
}

void MonitoringDaemon::run(std::size_t epochs) {
  for (std::size_t i = 0; i < epochs; ++i) run_epoch();
}

void MonitoringDaemon::run_wall_clock(double period_seconds,
                                      std::size_t epochs) {
  for (std::size_t i = 0; i < epochs; ++i) {
    run_epoch();
    if (period_seconds > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(period_seconds));
  }
}

void MonitoringDaemon::emit_epoch(double now_end,
                                  std::uint64_t values_this_epoch) {
  ++stats_.epochs;
  last_status_ = system_.status(now_end);
  const std::uint64_t gen = system_.generation();
  if (!collected_valid_ || gen != collected_generation_) {
    collected_ = system_.collected_pairs(now_end);
    collected_generation_ = gen;
    collected_valid_ = true;
  }
  stats_.pairs_emitted += collected_.size();

  for (const auto& [pair, enqueued_at] : pending_latency_) {
    if (!std::binary_search(collected_.begin(), collected_.end(), pair))
      continue;  // pair not in the plan — the value was never deliverable
    ++stats_.values_collected;
    if (metrics_.ingest_to_collected != nullptr)
      metrics_.ingest_to_collected->observe(now_end - enqueued_at);
  }
  pending_latency_.clear();

  if (options_.sink) {
    wire::EpochPairsRecord rec;
    rec.epoch = epoch_;
    rec.values_applied = values_this_epoch;
    rec.pairs.reserve(collected_.size());
    for (const NodeAttrPair& p : collected_)
      rec.pairs.push_back(wire::WirePair{p.node, p.attr, value_of(p)});
    wire::Writer w;
    wire::append_record(w, wire::RecordType::kEpochPairs,
                        wire::encode_epoch_pairs(rec));
    emit_stream(w.buffer().data(), w.size());
  }

  const BusStats bus_stats = bus_.stats();
  wire::SeriesSample sample;
  sample.epoch = epoch_;
  sample.values_applied = values_this_epoch;
  sample.pairs_collected = collected_.size();
  sample.coverage = last_status_.coverage;
  sample.message_volume = last_status_.message_volume;
  sample.queue_depth = bus_.depth();
  sample.values_shed = bus_stats.values_shed;
  series_.push_back(sample);
  while (series_.size() > options_.series_capacity) series_.pop_front();

  if (metrics_.epochs != nullptr) {
    metrics_.epochs->add(1);
    metrics_.commands_applied->add(scratch_commands_.size());
    metrics_.values_applied->add(values_this_epoch);
    metrics_.pairs_emitted->add(collected_.size());
    metrics_.values_shed->reset();  // set semantics: mirror the bus total
    metrics_.values_shed->add(bus_stats.values_shed);
    metrics_.queue_depth->set(static_cast<double>(sample.queue_depth));
    metrics_.queued_values->set(static_cast<double>(bus_.queued_values()));
    metrics_.coverage->set(last_status_.coverage);
  }
}

void MonitoringDaemon::emit_stream(const std::uint8_t* data,
                                   std::size_t size) {
  if (!options_.sink) return;
  if (!header_written_) {
    header_written_ = true;
    wire::Writer header;
    wire::begin_stream(header);
    options_.sink(header.buffer().data(), header.size());
  }
  options_.sink(data, size);
}

double MonitoringDaemon::value_of(NodeAttrPair pair) const {
  const auto it = latest_values_.find(pair);
  return it == latest_values_.end() ? 0.0 : it->second;
}

std::vector<std::uint8_t> MonitoringDaemon::snapshot() {
  wire::Writer payload;
  encode_system(payload, system_, now());

  payload.u64(epoch_);
  payload.u64(latest_values_.size());
  for (const auto& [pair, value] : latest_values_) {
    payload.u32(pair.node);
    payload.u32(pair.attr);
    payload.f64(value);
  }
  payload.u64(stats_.epochs);
  payload.u64(stats_.commands_applied);
  payload.u64(stats_.values_applied);
  payload.u64(stats_.values_invalid);
  payload.u64(stats_.values_collected);
  payload.u64(stats_.value_epochs_deferred);
  payload.u64(stats_.tasks_added);
  payload.u64(stats_.tasks_removed);
  payload.u64(stats_.tasks_modified);
  payload.u64(stats_.replans_forced);
  payload.u64(stats_.snapshots_taken);
  payload.u64(stats_.pairs_emitted);

  const std::vector<Command> queue = bus_.export_queue();
  payload.u32(static_cast<std::uint32_t>(queue.size()));
  for (const Command& cmd : queue) encode_command(payload, cmd);
  const auto buckets = bus_.export_buckets();
  payload.u32(static_cast<std::uint32_t>(buckets.size()));
  for (const auto& b : buckets) {
    payload.u32(b.producer);
    payload.f64(b.limits.rate);
    payload.f64(b.limits.burst);
    payload.f64(b.tokens);
    payload.f64(b.last_refill);
    payload.u8(b.initialized ? 1 : 0);
  }
  const BusStats bus_stats = bus_.stats();
  payload.u64(bus_stats.pushed);
  payload.u64(bus_stats.accepted);
  payload.u64(bus_stats.values_accepted);
  payload.u64(bus_stats.shed_rate_limit);
  payload.u64(bus_stats.shed_backpressure);
  payload.u64(bus_stats.rejected_full);
  payload.u64(bus_stats.values_shed);
  payload.u64(bus_stats.depth_peak);

  wire::Writer w;
  wire::begin_stream(w);
  wire::append_record(w, wire::RecordType::kSnapshot, payload.buffer());
  return w.take();
}

void MonitoringDaemon::restore(const std::vector<std::uint8_t>& image) {
  wire::Reader r(image);
  REMO_ASSERT(wire::read_stream_header(r), "snapshot image has no REMO header");
  wire::Record rec;
  REMO_ASSERT(wire::next_record(r, rec) &&
                  rec.type == wire::RecordType::kSnapshot,
              "snapshot image carries no kSnapshot record");
  wire::Reader p(rec.payload, rec.size);
  REMO_ASSERT(decode_system(p, system_), "malformed system image in snapshot");

  epoch_ = p.u64();
  latest_values_.clear();
  const std::uint64_t nvalues = p.u64();
  for (std::uint64_t i = 0; i < nvalues && p.ok(); ++i) {
    NodeAttrPair pair;
    pair.node = p.u32();
    pair.attr = p.u32();
    latest_values_.emplace(pair, p.f64());
  }
  stats_.epochs = p.u64();
  stats_.commands_applied = p.u64();
  stats_.values_applied = p.u64();
  stats_.values_invalid = p.u64();
  stats_.values_collected = p.u64();
  stats_.value_epochs_deferred = p.u64();
  stats_.tasks_added = p.u64();
  stats_.tasks_removed = p.u64();
  stats_.tasks_modified = p.u64();
  stats_.replans_forced = p.u64();
  stats_.snapshots_taken = p.u64();
  stats_.pairs_emitted = p.u64();

  std::vector<Command> queue(p.u32());
  for (Command& cmd : queue) cmd = decode_command(p);
  std::vector<MessageBus::BucketState> buckets(p.u32());
  for (auto& b : buckets) {
    b.producer = p.u32();
    b.limits.rate = p.f64();
    b.limits.burst = p.f64();
    b.tokens = p.f64();
    b.last_refill = p.f64();
    b.initialized = p.u8() != 0;
  }
  BusStats bus_stats;
  bus_stats.pushed = p.u64();
  bus_stats.accepted = p.u64();
  bus_stats.values_accepted = p.u64();
  bus_stats.shed_rate_limit = p.u64();
  bus_stats.shed_backpressure = p.u64();
  bus_stats.rejected_full = p.u64();
  bus_stats.values_shed = p.u64();
  bus_stats.depth_peak = p.u64();
  REMO_ASSERT(p.ok() && p.at_end(), "snapshot image has trailing or truncated ",
              "daemon state (", p.remaining(), " bytes remaining)");
  bus_.restore(std::move(queue), std::move(buckets), bus_stats);

  // Presentation state restarts fresh: the series ring and wire stream
  // belong to the process, not the monitored state.
  pending_latency_.clear();
  series_.clear();
  collected_valid_ = false;
  snapshot_requested_ = false;
  last_snapshot_.clear();
  // The restored facade is clean (restore_planner left nothing dirty), so
  // this read settles last_status_ without planning work.
  last_status_ = system_.status(now());
}

std::string MonitoringDaemon::summary_json() const {
  const BusStats bus_stats = bus_.stats();
  std::ostringstream os;
  os << "{\"service\":{"
     << "\"epochs\":" << stats_.epochs
     << ",\"virtual_time\":" << now()
     << ",\"commands_applied\":" << stats_.commands_applied
     << ",\"values_applied\":" << stats_.values_applied
     << ",\"values_invalid\":" << stats_.values_invalid
     << ",\"values_collected\":" << stats_.values_collected
     << ",\"value_epochs_deferred\":" << stats_.value_epochs_deferred
     << ",\"tasks_added\":" << stats_.tasks_added
     << ",\"tasks_removed\":" << stats_.tasks_removed
     << ",\"tasks_modified\":" << stats_.tasks_modified
     << ",\"replans_forced\":" << stats_.replans_forced
     << ",\"snapshots_taken\":" << stats_.snapshots_taken
     << ",\"pairs_emitted\":" << stats_.pairs_emitted
     << "},\"bus\":{"
     << "\"pushed\":" << bus_stats.pushed
     << ",\"accepted\":" << bus_stats.accepted
     << ",\"values_accepted\":" << bus_stats.values_accepted
     << ",\"shed_rate_limit\":" << bus_stats.shed_rate_limit
     << ",\"shed_backpressure\":" << bus_stats.shed_backpressure
     << ",\"rejected_full\":" << bus_stats.rejected_full
     << ",\"values_shed\":" << bus_stats.values_shed
     << ",\"depth_peak\":" << bus_stats.depth_peak
     << "},\"status\":{"
     << "\"tasks\":" << last_status_.tasks
     << ",\"pairs\":" << last_status_.pairs
     << ",\"collected\":" << last_status_.collected
     << ",\"coverage\":" << last_status_.coverage
     << ",\"trees\":" << last_status_.trees
     << ",\"message_volume\":" << last_status_.message_volume
     << ",\"adaptations\":" << last_status_.adaptations
     << ",\"delta_applies\":" << last_status_.delta_applies
     << "},\"federation\":{\"shards\":" << system_.num_shards() << "}}";
  return os.str();
}

std::string MonitoringDaemon::time_series_text() const {
  std::string out = wire::series_header();
  for (const wire::SeriesSample& s : series_) out += wire::series_line(s);
  return out;
}

}  // namespace remo::service
