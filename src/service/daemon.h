// MonitoringDaemon — service mode for the REMO stack (DESIGN.md §14): a
// long-running monitoring process that owns a FederatedMonitoringSystem
// (K = 1 by default, i.e. exactly the classic single-core system) behind
// an async ingest path.
//
//   producers ──push──▶ MessageBus ──drain──▶ run loop ──▶ wire records
//   (values, churn,      (admission:           (1 epoch =     + time series
//    control)             rate limits,          drain, apply,  + snapshots
//                         backpressure)         replan, emit)
//
// The run loop is epoch-driven on a VIRTUAL clock: epoch e ends at time
// e·epoch_duration, and that value — never the wall clock — feeds the
// planner, the delta tracker, and the latency histogram. Consequences:
//   - a test or bench driving run_epoch() in a tight loop observes the
//     exact same plans, flush cadences, and latency samples as a deployed
//     daemon pacing itself with run_wall_clock();
//   - daemon mode is bit-identical to batch mode: applying the same
//     command sequence directly to a FederatedMonitoringSystem with the
//     same clock values yields byte-equal collected-pair streams
//     (property-tested over 20 seeds in tests/service/);
//   - a daemon restored from snapshot() continues bit-identically: the
//     image carries the system (tasks, routes, forest, throttle state),
//     the bus (in-flight commands, token buckets), the latest-value map,
//     and the virtual clock.
//
// Task churn drains through the federation facade, which routes it to the
// shard cores' delta fast path (DeltaTracker, DESIGN.md §13); node
// outages surface through the facade's detect → repair → replan loop when
// recovery is enabled in the shard options.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "federation/federated_system.h"
#include "obs/metrics.h"
#include "service/message_bus.h"
#include "service/wire.h"

namespace remo::service {

struct DaemonOptions {
  /// Shard layout + per-shard core options (K = 1 default).
  federation::FederationOptions federation;
  BusOptions bus;
  /// Cap on attribute values applied per epoch; excess commands stay
  /// queued for later epochs (deferral — distinct from shedding, which
  /// happens at admission). 0 = unlimited.
  std::size_t max_values_per_epoch = 0;
  /// Virtual seconds per epoch — the unit of the planner clock and the
  /// ingest-to-collected latency histogram.
  double epoch_duration = 1.0;
  /// Retained time-series samples (ring; oldest dropped first).
  std::size_t series_capacity = 1024;
  /// Registry for `service.*` metrics. Null = the process-global one.
  obs::Registry* metrics = nullptr;
  /// Wire sink: called once at startup with the stream header and once
  /// per epoch with a framed kEpochPairs record (wire.h). Null = no
  /// stream output (in-memory accessors still work).
  std::function<void(const std::uint8_t* data, std::size_t size)> sink;
};

/// Always-on functional counters (the obs `service.*` metrics mirror
/// these; DaemonStats is the source of truth).
struct DaemonStats {
  std::uint64_t epochs = 0;
  std::uint64_t commands_applied = 0;
  std::uint64_t values_applied = 0;
  /// Values dropped at apply time for referencing the collector or a node
  /// outside the universe (admission cannot know the universe).
  std::uint64_t values_invalid = 0;
  /// Applied values whose (node, attr) pair the topology collected in the
  /// same epoch — the numerator of the delivery SLO.
  std::uint64_t values_collected = 0;
  /// Σ over epochs of values still queued at the epoch boundary — the
  /// deferral debt in value·epochs (0 while ingest keeps up).
  std::uint64_t value_epochs_deferred = 0;
  std::uint64_t tasks_added = 0;
  std::uint64_t tasks_removed = 0;
  std::uint64_t tasks_modified = 0;
  std::uint64_t replans_forced = 0;
  std::uint64_t snapshots_taken = 0;
  /// Σ over epochs of collected pairs emitted.
  std::uint64_t pairs_emitted = 0;
};

// Thread model (DESIGN.md §16): producers on any thread call the
// submit_* edge, which only touches `bus_` — MessageBus is the daemon's
// single cross-thread capability (one annotated remo::Mutex guards the
// queue, admission buckets, and stats; see service/message_bus.h). The
// run loop is a single consumer: everything below the bus (the federated
// system, stats_, collected_) is consumer-thread-only state, so it is
// deliberately unguarded and unannotated — adding a mutex there would
// claim a sharing that must never exist.
class MonitoringDaemon {
 public:
  MonitoringDaemon(SystemModel global, DaemonOptions options = {});

  // The federation facade and the metric handles are address-pinned.
  MonitoringDaemon(const MonitoringDaemon&) = delete;
  MonitoringDaemon& operator=(const MonitoringDaemon&) = delete;

  // ---- producer edge (safe from any thread) -----------------------------
  MessageBus& bus() noexcept { return bus_; }
  Admission submit_values(std::uint32_t producer,
                          std::vector<ValueUpdate> values);
  /// Task ids are assigned at apply time, in drain (FIFO) order — with a
  /// single producer they are deterministic: 1, 2, 3, ...
  Admission submit_add_task(MonitoringTask task);
  Admission submit_remove_task(TaskId id);
  Admission submit_modify_task(MonitoringTask task);
  Admission submit_control(ControlKind control);

  // ---- run loop (single consumer) ---------------------------------------
  /// One deterministic tick: drain (bounded by max_values_per_epoch),
  /// apply in FIFO order, run the recovery epoch step, replan lazily, and
  /// emit the epoch's collected pairs.
  void run_epoch();
  void run(std::size_t epochs);
  /// Wall-clock pacing for deployments: runs `epochs` ticks,
  /// sleeping `period_seconds` after each. Plans are identical to the
  /// same number of run_epoch() calls — wall time never reaches them.
  void run_wall_clock(double period_seconds, std::size_t epochs);

  std::uint64_t epoch() const noexcept { return epoch_; }
  /// The virtual clock: end time of the last completed epoch.
  double now() const noexcept {
    return static_cast<double>(epoch_) * options_.epoch_duration;
  }

  // ---- read side ---------------------------------------------------------
  federation::FederatedMonitoringSystem& system() noexcept { return system_; }
  const DaemonStats& stats() const noexcept { return stats_; }
  /// The last emitted epoch's collected pairs (sorted by (node, attr)).
  const std::vector<NodeAttrPair>& last_collected() const noexcept {
    return collected_;
  }
  const federation::FederatedMonitoringSystem::Status& last_status()
      const noexcept {
    return last_status_;
  }
  /// Freshest ingested value for a pair (0.0 if never seen).
  double value_of(NodeAttrPair pair) const;

  // ---- snapshot/restore --------------------------------------------------
  /// Full daemon image: stream header + one kSnapshot record carrying the
  /// system (snapshot.h), the bus, the latest-value map, the counters,
  /// and the virtual clock.
  std::vector<std::uint8_t> snapshot();
  /// Restores from a snapshot() image into this daemon, which must have
  /// been constructed with the same SystemModel and options. Aborts on a
  /// malformed or mismatched image (snapshots are trusted local state).
  void restore(const std::vector<std::uint8_t>& image);
  /// Image captured by the last kSnapshot control command (empty if none).
  const std::vector<std::uint8_t>& last_snapshot() const noexcept {
    return last_snapshot_;
  }

  // ---- resource_monitor-style exporters ---------------------------------
  /// One JSON object summarizing the run so far (status roll-up, daemon
  /// counters, bus admission stats).
  std::string summary_json() const;
  /// The retained per-epoch time series (wire::series_header + lines).
  std::string time_series_text() const;
  const std::deque<wire::SeriesSample>& series() const noexcept {
    return series_;
  }

 private:
  struct ServiceMetrics {
    obs::Counter* epochs = nullptr;
    obs::Counter* commands_applied = nullptr;
    obs::Counter* values_applied = nullptr;
    obs::Counter* pairs_emitted = nullptr;
    obs::Counter* values_shed = nullptr;     ///< set-semantics mirror of BusStats
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* queued_values = nullptr;
    obs::Gauge* coverage = nullptr;
    obs::Histogram* ingest_to_collected = nullptr;  ///< virtual seconds
  };

  void apply(Command& cmd, std::uint64_t& values_this_epoch);
  void emit_epoch(double now_end, std::uint64_t values_this_epoch);
  void emit_stream(const std::uint8_t* data, std::size_t size);

  DaemonOptions options_;
  federation::FederatedMonitoringSystem system_;
  MessageBus bus_;
  ServiceMetrics metrics_;

  std::uint64_t epoch_ = 0;
  DaemonStats stats_;
  /// Freshest value per pair, ordered — iteration feeds the wire stream.
  std::map<NodeAttrPair, double> latest_values_;
  /// (pair, enqueue stamp) of values applied this epoch, awaiting the
  /// collected set to resolve their latency.
  std::vector<std::pair<NodeAttrPair, double>> pending_latency_;
  std::vector<NodeAttrPair> collected_;
  std::uint64_t collected_generation_ = 0;
  bool collected_valid_ = false;
  federation::FederatedMonitoringSystem::Status last_status_;
  std::deque<wire::SeriesSample> series_;
  std::vector<Command> scratch_commands_;
  std::vector<std::uint8_t> last_snapshot_;
  bool snapshot_requested_ = false;
  bool header_written_ = false;
};

}  // namespace remo::service
