// Guided partition augmentation (Sec. 3.1.1): enumerate the neighboring
// solutions of a partition (one merge or one split away) and rank them by
// the estimated reduction in total capacity usage, so the planner can
// evaluate only the most promising few with (expensive) resource-aware
// tree construction.
//
// The exact gain formula lives in the paper's online appendix, which is
// not part of the provided text; the estimates here implement what the
// body specifies — "the estimated reduction in the total capacity usage
// that would result from using the new partition":
//
//   merge(A_i, A_j):  every node monitored by both trees sends (and its
//     parent receives) one message instead of two, saving ~2·C per shared
//     node per unit time:              g = 2·C·|N_i ∩ N_j|
//   split(A_i ▷ α):   a split never reduces aggregate usage (it adds
//     per-message overhead 2·C for every node that monitors α alongside
//     another attribute of A_i), but it relieves the per-node payload of
//     an overloaded tree; we rank splits by relieved payload minus added
//     overhead:                        g = a·Σ_{n∈N_α} depth-free payload
//                                          − 2·C·|N_α ∩ N_{A_i∖α}|
//     (payload relieved = values of α no longer relayed in tree i).
//
// Positive-gain merges come first; splits matter when the evaluation
// objective (collected pairs) is capacity-limited, which the planner
// discovers by evaluating them after the merges.
#pragma once

#include <cstddef>
#include <vector>

#include "cost/cost_model.h"
#include "partition/partition.h"
#include "task/pair_set.h"

namespace remo {

enum class AugmentKind : std::uint8_t { kMerge, kSplit };

struct Augmentation {
  AugmentKind kind = AugmentKind::kMerge;
  /// Merge: the two set indices. Split: set_a is the set index.
  std::size_t set_a = 0;
  std::size_t set_b = 0;
  /// Split only: the attribute moved into its own set.
  AttrId attr = 0;
  /// Estimated total-capacity-usage reduction (higher = more promising).
  double estimated_gain = 0.0;
};

/// Applies `aug` to a copy of `p` and returns it.
Partition apply(const Partition& p, const Augmentation& aug);

/// The tree-rebuild footprint of applying `aug` to `p`: which partition
/// sets (by index) are torn down and which attribute sets replace them.
/// This is the unit of work the plan-evaluation engine executes — a merge
/// replaces two trees with their union, a split replaces one tree with
/// (rest, {attr}).
struct AugmentationFootprint {
  std::vector<std::size_t> victims;
  std::vector<std::vector<AttrId>> new_sets;
};

AugmentationFootprint footprint(const Partition& p, const Augmentation& aug);

/// Estimated gain of merging sets `i` and `j` of `p` (see file comment).
double estimate_merge_gain(const Partition& p, std::size_t i, std::size_t j,
                           const PairSet& pairs, const CostModel& cost);

/// Estimated gain of splitting `attr` out of set `i`.
double estimate_split_gain(const Partition& p, std::size_t i, AttrId attr,
                           const PairSet& pairs, const CostModel& cost);

/// All neighboring solutions of `p` (every legal merge and split, minus
/// those blocked by `conflicts`), ranked by decreasing estimated gain.
/// `max_candidates` truncates the list (0 = no limit).
///
/// `set_bonus` (optional, one entry per partition set) is added to the
/// estimate of every candidate touching that set. The planner passes the
/// capacity value of each tree's *uncollected* pairs here, so operations
/// involving starved trees — whose reshaping can recover real coverage,
/// not just shave overhead — are evaluated first.
std::vector<Augmentation> ranked_augmentations(
    const Partition& p, const PairSet& pairs, const CostModel& cost,
    const ConflictConstraints& conflicts, std::size_t max_candidates = 0,
    const std::vector<double>* set_bonus = nullptr);

}  // namespace remo
