// Attribute-set partitions (Sec. 3.1): a partition P of the monitored
// attribute universe determines the forest — one monitoring tree per
// partition set, delivering exactly that set's attributes. The two
// degenerate schemes are SINGLETON-SET (one attribute per set, as in PIER)
// and ONE-SET (a single set, as in static-topology systems); REMO's local
// search explores the space between them via merge and split operations
// (Definition 2) over neighboring solutions (Definition 3).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace remo {

class Partition {
 public:
  Partition() = default;
  /// Builds a partition from explicit sets. Each set is sorted/deduped;
  /// empty sets are dropped. Aborts (throws) if sets overlap.
  explicit Partition(std::vector<std::vector<AttrId>> sets);

  /// P = {{a} : a ∈ universe} — the SINGLETON-SET scheme.
  static Partition singleton(const std::vector<AttrId>& universe);
  /// P = {universe} — the ONE-SET scheme.
  static Partition one_set(const std::vector<AttrId>& universe);

  std::size_t num_sets() const noexcept { return sets_.size(); }
  const std::vector<AttrId>& set(std::size_t i) const { return sets_.at(i); }
  const std::vector<std::vector<AttrId>>& sets() const noexcept { return sets_; }

  /// Union of all sets (sorted).
  std::vector<AttrId> universe() const;
  /// Index of the set containing `attr`, or num_sets() if absent.
  std::size_t set_of(AttrId attr) const;
  bool contains(AttrId attr) const { return set_of(attr) != num_sets(); }

  /// Merge operation A_i ⋈ A_j: replaces sets i and j with their union.
  /// Indices refer to the current layout; the merged set takes the lower
  /// index and the tail set shifts down. Aborts on i == j / out of range.
  void merge(std::size_t i, std::size_t j);

  /// Split operation A_i ▷ α: removes α from set i (which must contain it
  /// and have ≥ 2 attributes) and appends {α} as a new set.
  void split(std::size_t i, AttrId attr);

  /// True iff sets are disjoint, non-empty, sorted, and cover exactly
  /// `universe` (when given).
  bool valid() const;
  bool valid_over(const std::vector<AttrId>& universe) const;

  /// Canonical form (sets sorted by first element) for order-insensitive
  /// comparison in tests and memoization keys.
  std::vector<std::vector<AttrId>> canonical() const;
  /// Compact "{a,b}{c}" rendering for logs and test failures.
  std::string to_string() const;

  bool operator==(const Partition& other) const { return canonical() == other.canonical(); }

 private:
  std::vector<std::vector<AttrId>> sets_;
};

/// Attribute pairs that must never share a partition set. Used by the
/// SSDP/DSDP reliability rewriting (Sec. 6.2): an attribute and its alias
/// must ride different trees ("different paths").
class ConflictConstraints {
 public:
  void forbid(AttrId a, AttrId b);
  bool conflicts(AttrId a, AttrId b) const;
  /// True iff merging `x` and `y` (as attribute sets) would co-locate any
  /// forbidden pair.
  bool blocks_merge(const std::vector<AttrId>& x, const std::vector<AttrId>& y) const;
  /// True iff every set of `p` is conflict-free.
  bool satisfied_by(const Partition& p) const;
  bool empty() const noexcept { return pairs_.empty(); }
  std::size_t size() const noexcept { return pairs_.size(); }

 private:
  // Stored as (min, max) pairs, sorted.
  std::vector<std::pair<AttrId, AttrId>> pairs_;
};

}  // namespace remo
