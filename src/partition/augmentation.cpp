#include "partition/augmentation.h"

#include <algorithm>

#include "common/sorted_vector.h"

namespace remo {

Partition apply(const Partition& p, const Augmentation& aug) {
  Partition out = p;
  if (aug.kind == AugmentKind::kMerge)
    out.merge(aug.set_a, aug.set_b);
  else
    out.split(aug.set_a, aug.attr);
  return out;
}

AugmentationFootprint footprint(const Partition& p, const Augmentation& aug) {
  AugmentationFootprint fp;
  if (aug.kind == AugmentKind::kMerge) {
    fp.victims = {aug.set_a, aug.set_b};
    fp.new_sets = {set_union(p.set(aug.set_a), p.set(aug.set_b))};
  } else {
    fp.victims = {aug.set_a};
    auto rest = set_difference(p.set(aug.set_a), std::vector<AttrId>{aug.attr});
    fp.new_sets = {std::move(rest), {aug.attr}};
  }
  return fp;
}

double estimate_merge_gain(const Partition& p, std::size_t i, std::size_t j,
                           const PairSet& pairs, const CostModel& cost) {
  const auto ni = pairs.nodes_with_any(p.set(i));
  const auto nj = pairs.nodes_with_any(p.set(j));
  const auto shared = intersection_size(ni, nj);
  return 2.0 * cost.per_message * static_cast<double>(shared);
}

double estimate_split_gain(const Partition& p, std::size_t i, AttrId attr,
                           const PairSet& pairs, const CostModel& cost) {
  const auto& set = p.set(i);
  const auto rest = set_difference(set, std::vector<AttrId>{attr});
  const auto n_attr = pairs.nodes_with(attr);
  const auto n_rest = pairs.nodes_with_any(rest);
  const auto both = intersection_size(n_attr, n_rest);
  // Payload relieved from tree i: one value of `attr` per monitoring node,
  // no longer mixed into the (potentially overloaded) shared tree.
  const double relieved = cost.per_value * static_cast<double>(n_attr.size());
  const double overhead = 2.0 * cost.per_message * static_cast<double>(both);
  return relieved - overhead;
}

std::vector<Augmentation> ranked_augmentations(const Partition& p,
                                               const PairSet& pairs,
                                               const CostModel& cost,
                                               const ConflictConstraints& conflicts,
                                               std::size_t max_candidates,
                                               const std::vector<double>* set_bonus) {
  std::vector<Augmentation> out;
  const std::size_t k = p.num_sets();
  auto bonus = [&](std::size_t i) {
    return set_bonus != nullptr && i < set_bonus->size() ? (*set_bonus)[i] : 0.0;
  };
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      if (conflicts.blocks_merge(p.set(i), p.set(j))) continue;
      Augmentation a;
      a.kind = AugmentKind::kMerge;
      a.set_a = i;
      a.set_b = j;
      a.estimated_gain =
          estimate_merge_gain(p, i, j, pairs, cost) + bonus(i) + bonus(j);
      out.push_back(a);
    }
    if (p.set(i).size() >= 2) {
      for (AttrId attr : p.set(i)) {
        Augmentation a;
        a.kind = AugmentKind::kSplit;
        a.set_a = i;
        a.attr = attr;
        a.estimated_gain = estimate_split_gain(p, i, attr, pairs, cost) + bonus(i);
        out.push_back(a);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Augmentation& a, const Augmentation& b) {
                     return a.estimated_gain > b.estimated_gain;
                   });
  if (max_candidates > 0 && out.size() > max_candidates) out.resize(max_candidates);
  return out;
}

}  // namespace remo
