#include "partition/partition.h"

#include <algorithm>
#include <stdexcept>

#include "common/sorted_vector.h"

namespace remo {

Partition::Partition(std::vector<std::vector<AttrId>> sets) {
  for (auto& s : sets) {
    sort_unique(s);
    if (!s.empty()) sets_.push_back(std::move(s));
  }
  std::size_t total = 0;
  for (const auto& s : sets_) total += s.size();
  if (universe().size() != total)
    throw std::invalid_argument("partition sets overlap");
}

Partition Partition::singleton(const std::vector<AttrId>& universe) {
  Partition p;
  p.sets_.reserve(universe.size());
  for (AttrId a : universe) p.sets_.push_back({a});
  return p;
}

Partition Partition::one_set(const std::vector<AttrId>& universe) {
  Partition p;
  if (!universe.empty()) {
    auto u = universe;
    sort_unique(u);
    p.sets_.push_back(std::move(u));
  }
  return p;
}

std::vector<AttrId> Partition::universe() const {
  std::vector<AttrId> all;
  for (const auto& s : sets_) all.insert(all.end(), s.begin(), s.end());
  sort_unique(all);
  return all;
}

std::size_t Partition::set_of(AttrId attr) const {
  for (std::size_t i = 0; i < sets_.size(); ++i)
    if (set_contains(sets_[i], attr)) return i;
  return sets_.size();
}

void Partition::merge(std::size_t i, std::size_t j) {
  if (i == j || i >= sets_.size() || j >= sets_.size())
    throw std::out_of_range("bad merge indices");
  if (i > j) std::swap(i, j);
  sets_[i] = set_union(sets_[i], sets_[j]);
  sets_.erase(sets_.begin() + static_cast<std::ptrdiff_t>(j));
}

void Partition::split(std::size_t i, AttrId attr) {
  if (i >= sets_.size()) throw std::out_of_range("bad split index");
  auto& s = sets_[i];
  if (s.size() < 2) throw std::invalid_argument("cannot split a singleton set");
  if (!set_erase(s, attr)) throw std::invalid_argument("attr not in set");
  sets_.push_back({attr});
}

bool Partition::valid() const {
  std::size_t total = 0;
  for (const auto& s : sets_) {
    if (s.empty() || !is_sorted_unique(s)) return false;
    total += s.size();
  }
  return universe().size() == total;
}

bool Partition::valid_over(const std::vector<AttrId>& u) const {
  if (!valid()) return false;
  auto mine = universe();
  auto theirs = u;
  sort_unique(theirs);
  return mine == theirs;
}

std::vector<std::vector<AttrId>> Partition::canonical() const {
  auto out = sets_;
  std::sort(out.begin(), out.end());
  return out;
}

std::string Partition::to_string() const {
  std::string s;
  for (const auto& set : canonical()) {
    s += '{';
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (i) s += ',';
      s += std::to_string(set[i]);
    }
    s += '}';
  }
  return s;
}

void ConflictConstraints::forbid(AttrId a, AttrId b) {
  if (a == b) throw std::invalid_argument("cannot forbid an attr with itself");
  if (a > b) std::swap(a, b);
  set_insert(pairs_, std::make_pair(a, b));
}

bool ConflictConstraints::conflicts(AttrId a, AttrId b) const {
  if (a > b) std::swap(a, b);
  return set_contains(pairs_, std::make_pair(a, b));
}

bool ConflictConstraints::blocks_merge(const std::vector<AttrId>& x,
                                       const std::vector<AttrId>& y) const {
  if (pairs_.empty()) return false;
  for (const auto& [a, b] : pairs_) {
    const bool a_in_x = set_contains(x, a), a_in_y = set_contains(y, a);
    const bool b_in_x = set_contains(x, b), b_in_y = set_contains(y, b);
    if ((a_in_x || a_in_y) && (b_in_x || b_in_y)) return true;
  }
  return false;
}

bool ConflictConstraints::satisfied_by(const Partition& p) const {
  if (pairs_.empty()) return true;
  for (const auto& [a, b] : pairs_) {
    const auto ia = p.set_of(a);
    if (ia < p.num_sets() && ia == p.set_of(b)) return false;
  }
  return true;
}

}  // namespace remo
