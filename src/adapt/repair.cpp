#include "adapt/repair.h"

#include <algorithm>

#include "common/check.h"
#include "common/sorted_vector.h"

namespace remo {

namespace {

/// Shallowest feasible attach point for `item`, excluding suspected
/// vertices (`suspect` sorted-unique); ties break by ascending node id.
/// kNoNode if none.
NodeId best_attach_point(const MonitoringTree& tree, const BuildItem& item,
                         const std::vector<NodeId>& suspect) {
  std::vector<NodeId> targets = tree.members();
  std::sort(targets.begin(), targets.end());
  targets.insert(targets.begin(), kCollectorId);
  NodeId best = kNoNode;
  std::size_t best_depth = 0;
  for (NodeId v : targets) {
    if (set_contains(suspect, v)) continue;
    const std::size_t d = tree.depth(v);
    if (best != kNoNode && d >= best_depth) continue;
    if (!tree.can_attach(item, v)) continue;
    best = v;
    best_depth = d;
  }
  return best;
}

}  // namespace

RepairResult repair_topology(const Topology& topo, const SystemModel& system,
                             const std::vector<NodeId>& suspected) {
  RepairResult res;
  res.topo = topo;
  // Sorted-unique: membership is a binary search and — unlike a hash set —
  // iteration order is deterministic (DESIGN.md §10, lint rule
  // unordered-iteration).
  std::vector<NodeId> suspect(suspected.begin(), suspected.end());
  sort_unique(suspect);
  if (suspect.empty()) return res;

  for (auto& entry : res.topo.mutable_entries()) {
    MonitoringTree& tree = entry.tree;

    // Suspected members of this tree, shallowest first: detaching a
    // shallow branch also removes any deeper suspects inside it.
    std::vector<NodeId> present;
    for (NodeId s : suspect)
      if (tree.contains(s)) present.push_back(s);
    if (present.empty()) continue;
    ++res.outcome.trees_touched;
    std::sort(present.begin(), present.end(), [&tree](NodeId a, NodeId b) {
      const std::size_t da = tree.depth(a), db = tree.depth(b);
      if (da != db) return da < db;
      return a < b;
    });

    std::vector<BuildItem> removed;
    for (NodeId s : present) {
      if (!tree.contains(s)) continue;  // already gone with an ancestor
      auto items = tree.detach_branch(s);
      removed.insert(removed.end(), std::make_move_iterator(items.begin()),
                     std::make_move_iterator(items.end()));
    }

    // Re-bind the survivors' allocations to their *global* remaining
    // budget before attaching anything. Unlike the DIRECT-APPLY clamp this
    // RELAXES as well as tightens: repair is the emergency path, so a tree
    // may spend every unit of capacity the rest of the forest is not
    // using — including reserve the planner deliberately left behind
    // (FailureRecoveryOptions::repair_headroom).
    auto rebind = [&](NodeId v) {
      const Capacity other = res.topo.node_usage(v) - tree.usage(v);
      tree.set_avail(v, std::max(tree.usage(v), system.capacity(v) - other));
    };
    for (NodeId v : tree.members()) rebind(v);
    rebind(kCollectorId);

    // Re-home healthy orphans first (they carry live data), suspects last
    // (probe links). `removed` is BFS order, so a re-attached parent is a
    // candidate target for its former children.
    for (const bool suspects_pass : {false, true}) {
      for (const BuildItem& orig : removed) {
        if (set_contains(suspect, orig.id) != suspects_pass) continue;
        BuildItem item = orig;
        item.avail = std::max<Capacity>(
            0, system.capacity(item.id) - res.topo.node_usage(item.id));
        const NodeId target = best_attach_point(tree, item, suspect);
        if (target == kNoNode) {
          ++res.outcome.members_dropped;
          res.outcome.pairs_dropped += item.local_total();
          continue;
        }
        tree.attach(item, target);
        if (suspects_pass)
          ++res.outcome.suspects_parked;
        else
          ++res.outcome.orphans_reattached;
      }
    }
    entry.collected_pairs = tree.collected_pairs();
  }

  res.outcome.repair_messages = edge_diff(topo, res.topo);
  // Repair relaxes per-tree avails up to the global remaining budget, but
  // may never overdraw a node across the forest.
  REMO_VALIDATE(res.topo.validate(system),
                "repair_topology broke capacity invariants (", suspect.size(),
                " suspects, ", res.outcome.trees_touched, " trees touched)");
  return res;
}

RepairOutcome park_members(Topology& topo, const SystemModel& system,
                           const std::vector<NodeId>& members,
                           const PairSet& pairs) {
  RepairOutcome out;
  std::vector<NodeId> sorted(members.begin(), members.end());
  sort_unique(sorted);

  for (auto& entry : topo.mutable_entries()) {
    MonitoringTree& tree = entry.tree;
    const auto& specs = tree.attr_specs();
    bool rebound = false;
    for (NodeId m : sorted) {
      if (tree.contains(m)) continue;
      BuildItem item;
      item.id = m;
      item.local.resize(specs.size(), 0);
      for (std::size_t k = 0; k < specs.size(); ++k)
        if (pairs.contains(m, specs[k].attr)) item.local[k] = 1;
      if (item.local_total() == 0) continue;
      if (!rebound) {
        // Same relaxing re-bind as repair_topology: parking is the
        // emergency path and may spend the planner's reserved headroom.
        auto rebind = [&](NodeId v) {
          const Capacity other = topo.node_usage(v) - tree.usage(v);
          tree.set_avail(v, std::max(tree.usage(v), system.capacity(v) - other));
        };
        for (NodeId v : tree.members()) rebind(v);
        rebind(kCollectorId);
        rebound = true;
        ++out.trees_touched;
      }
      item.avail = std::max<Capacity>(
          0, system.capacity(m) - topo.node_usage(m));
      const NodeId target = best_attach_point(tree, item, sorted);
      if (target == kNoNode) {
        ++out.members_dropped;
        out.pairs_dropped += item.local_total();
        continue;
      }
      tree.attach(item, target);
      ++out.suspects_parked;
    }
    entry.collected_pairs = tree.collected_pairs();
  }
  REMO_VALIDATE(topo.validate(system), "park_members broke capacity invariants (",
                sorted.size(), " members, ", out.suspects_parked, " parked)");
  return out;
}

}  // namespace remo
