// Dirty-set tracking and burst coalescing for delta replanning
// (DESIGN.md §13). Task churn arrives as TaskDeltas (task/task_delta.h);
// the tracker accumulates them into one pending delta — with cancellation,
// so churn that undoes itself melts away — and decides *when* a replan
// amortizes, mirroring the Sec. 4.2 cost-benefit bound at batch
// granularity: deferral is cheap while the estimated replan cost still
// exceeds the staleness debt the pending pairs have accrued,
//
//   replan when   M_replan < (now − T_first_pending) · |pending pairs|
//
// with M_replan an EWMA over observed replan costs (the analog of M_adapt)
// and the right-hand side the accumulated benefit of replanning now. Hard
// bounds on pending age and size keep worst-case staleness bounded no
// matter what the estimate says.
//
// Deterministic by construction: decisions depend only on the caller's
// `now` values and the delta stream — benches drive `now` synthetically
// (batch index), making flush cadence bit-reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "task/task_delta.h"

namespace remo {

struct DeltaTrackerOptions {
  /// Hard staleness bound: flush whenever the oldest pending update has
  /// waited this long, regardless of the amortized estimate.
  double max_defer_seconds = 1.0;
  /// Hard size bound: flush when the coalesced delta reaches this many
  /// changed pairs.
  std::size_t max_pending_pairs = 256;
  /// EWMA weight of the newest observed replan cost (0 < w ≤ 1).
  double cost_smoothing = 0.25;
  /// Replan-cost prior before the first observation, in seconds.
  double initial_cost_seconds = 1e-3;
  /// The deployment's exchange rate between staleness and planning
  /// compute: how many seconds of replan cost one pair-second of pending
  /// staleness debt is worth (the collapsed C_cur − C_adj factor of the
  /// Sec. 4.2 bound). Lower values defer longer, coalescing bigger
  /// bursts; 0 disables the amortized estimate entirely, leaving only the
  /// deterministic hard bounds — what benches use to keep flush cadence
  /// machine-independent while still measuring real replan cost.
  double staleness_cost_per_pair_second = 1.0;
};

class DeltaTracker {
 public:
  explicit DeltaTracker(DeltaTrackerOptions opts = {})
      : opts_(opts), cost_ewma_(opts.initial_cost_seconds) {}

  /// Merges `delta` into the pending set (with cancellation). A delta that
  /// cancels the pending set back to empty leaves nothing to flush.
  void enqueue(const TaskDelta& delta, double now);

  bool empty() const noexcept { return pending_.pairs.empty(); }
  const TaskDelta& pending() const noexcept { return pending_; }
  /// Updates absorbed since the last take() (including cancelled ones).
  std::size_t coalesced_updates() const noexcept { return coalesced_updates_; }
  /// The attributes the pending delta touches (sorted, unique) — the dirty
  /// set that seeds the scoped local search.
  std::vector<AttrId> dirty_attrs() const { return pending_.pairs.affected_attrs(); }

  /// The Sec. 4.2-style amortized decision described above. False while
  /// pending is empty.
  bool should_flush(double now) const;

  /// Drains and returns the coalesced pending delta; resets the burst
  /// window to `now`.
  TaskDelta take(double now);

  /// Feeds an observed replan cost (wall seconds) into the EWMA estimate.
  void observe_replan_cost(double seconds);
  double replan_cost_estimate() const noexcept { return cost_ewma_; }
  /// Snapshot-restore hook (service/snapshot.h): re-seeds the EWMA so a
  /// restored planner throttles exactly like the one that was captured.
  void set_replan_cost_estimate(double seconds) noexcept { cost_ewma_ = seconds; }

 private:
  DeltaTrackerOptions opts_;
  TaskDelta pending_;
  std::size_t coalesced_updates_ = 0;
  double first_pending_time_ = 0.0;
  double cost_ewma_;
};

}  // namespace remo
