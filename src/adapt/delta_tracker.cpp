#include "adapt/delta_tracker.h"

#include <algorithm>

namespace remo {

void DeltaTracker::enqueue(const TaskDelta& delta, double now) {
  if (delta.empty()) return;
  if (pending_.pairs.empty()) first_pending_time_ = now;
  pending_.merge(delta);
  ++coalesced_updates_;
}

bool DeltaTracker::should_flush(double now) const {
  if (pending_.pairs.empty()) return false;
  const double age = now - first_pending_time_;
  if (age >= opts_.max_defer_seconds) return true;
  if (pending_.pairs.size() >= opts_.max_pending_pairs) return true;
  // Amortized bound: the staleness debt (age × pending pairs, converted
  // to replan-cost seconds by the exchange rate) has grown past the
  // estimated replan cost — replanning now pays for itself.
  return cost_ewma_ < age * static_cast<double>(pending_.pairs.size()) *
                          opts_.staleness_cost_per_pair_second;
}

TaskDelta DeltaTracker::take(double now) {
  TaskDelta out = std::move(pending_);
  pending_ = TaskDelta{};
  coalesced_updates_ = 0;
  first_pending_time_ = now;
  return out;
}

void DeltaTracker::observe_replan_cost(double seconds) {
  const double w = std::clamp(opts_.cost_smoothing, 0.0, 1.0);
  cost_ewma_ = (1.0 - w) * cost_ewma_ + w * seconds;
}

}  // namespace remo
