#include "adapt/adaptive_planner.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <limits>

#include "common/check.h"
#include "common/sorted_vector.h"
#include "planner/evaluator.h"

namespace remo {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Process CPU time (all threads — the evaluation engine's pool included),
// for the planning_cpu_seconds report field. Falls back to std::clock()
// where the POSIX per-process clock is unavailable.
double cpu_seconds_now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

}  // namespace

const char* to_string(AdaptScheme s) noexcept {
  switch (s) {
    case AdaptScheme::kDirectApply:
      return "DIRECT-APPLY";
    case AdaptScheme::kRebuild:
      return "REBUILD";
    case AdaptScheme::kNoThrottle:
      return "NO-THROTTLE";
    case AdaptScheme::kAdaptive:
      return "ADAPTIVE";
  }
  return "?";
}

AdaptivePlanner::AdaptivePlanner(const SystemModel& system, PlannerOptions options,
                                 AdaptScheme scheme,
                                 DeltaTrackerOptions tracker_options)
    : system_(&system),
      planner_(system, std::move(options)),
      scheme_(scheme),
      tracker_(tracker_options) {
  obs::Registry& reg = obs::registry_or_global(planner_.options().metrics);
  metrics_.updates = &reg.counter("planner.delta.updates");
  metrics_.coalesced = &reg.counter("planner.delta.updates_coalesced");
  metrics_.replans = &reg.counter("planner.delta.replans");
  metrics_.pairs_changed = &reg.counter("planner.delta.pairs_changed");
  metrics_.replan_seconds =
      &reg.histogram("planner.delta.replan_seconds", obs::Histogram::time_bounds());
}

double AdaptivePlanner::last_adjusted(const std::vector<AttrId>& attrs,
                                      double now) const {
  auto it = adjusted_at_.find(attrs);
  if (it != adjusted_at_.end()) return it->second;
  (void)now;
  return init_time_;
}

void AdaptivePlanner::stamp(const std::vector<AttrId>& attrs, double now) {
  adjusted_at_[attrs] = now;
}

AdaptReport AdaptivePlanner::initialize(const PairSet& pairs, double now) {
  const auto start = std::chrono::steady_clock::now();
  const double cpu_start = cpu_seconds_now();
  AdaptReport report;
  init_time_ = now;
  topology_ = planner_.plan(pairs);
  pairs_ = pairs;
  adjusted_at_.clear();
  for (const auto& e : topology_.entries()) stamp(e.attrs, now);
  report.planning_wall_seconds = seconds_since(start);
  report.planning_cpu_seconds = cpu_seconds_now() - cpu_start;
  report.adaptation_messages = topology_.edges().size();  // all links are new
  report.score = score_of(topology_);
  const EvalStats stats = planner_.last_stats();  // plan() reset the window
  report.candidates_evaluated = stats.evaluations;
  report.cache_hits = stats.cache_hits;
  return report;
}

void AdaptivePlanner::adopt(Topology topo, double now) {
  topology_ = std::move(topo);
  for (const auto& e : topology_.entries())
    if (adjusted_at_.find(e.attrs) == adjusted_at_.end()) stamp(e.attrs, now);
}

void AdaptivePlanner::restore(PairSet pairs, Topology topo,
                              std::map<std::vector<AttrId>, double> stamps,
                              double init_time, double replan_cost_estimate) {
  pairs_ = std::move(pairs);
  topology_ = std::move(topo);
  topology_.set_total_pairs(pairs_.total_pairs());
  adjusted_at_ = std::move(stamps);
  init_time_ = init_time;
  tracker_.set_replan_cost_estimate(replan_cost_estimate);
  // The evaluation engine's pair view resyncs in full on the next
  // adaptation (synced_pairs() is null on a fresh planner); memo-cache
  // hits are bit-identical to fresh builds, so a cold cache cannot make a
  // restored planner diverge from the captured one.
  REMO_VALIDATE(topology_.validate(*system_),
                "restored topology violates capacity (", topology_.num_trees(),
                " trees, ", pairs_.total_pairs(), " pairs)");
}

std::vector<std::vector<AttrId>> AdaptivePlanner::direct_apply(
    const PairSetDelta& delta, double now) {
  if (delta.empty()) return {};
  // pairs_ already holds the post-delta set; universe entry/exit follows
  // from per-attribute count arithmetic over the delta alone
  // (old_count = new_count − added + removed), O(|delta| log U) instead of
  // materializing and diffing two full universes.
  const auto changed_attrs = delta.affected_attrs();
  std::vector<AttrId> removed_attrs;
  std::vector<AttrId> added_attrs;
  {
    std::vector<std::size_t> added_n(changed_attrs.size(), 0);
    std::vector<std::size_t> removed_n(changed_attrs.size(), 0);
    auto slot = [&changed_attrs](AttrId a) {
      return static_cast<std::size_t>(
          std::lower_bound(changed_attrs.begin(), changed_attrs.end(), a) -
          changed_attrs.begin());
    };
    for (const auto& p : delta.added) ++added_n[slot(p.attr)];
    for (const auto& p : delta.removed) ++removed_n[slot(p.attr)];
    for (std::size_t i = 0; i < changed_attrs.size(); ++i) {
      const std::size_t new_count = pairs_.attr_count(changed_attrs[i]);
      const std::size_t old_count = new_count - added_n[i] + removed_n[i];
      if (old_count > 0 && new_count == 0) removed_attrs.push_back(changed_attrs[i]);
      if (old_count == 0 && new_count > 0) added_attrs.push_back(changed_attrs[i]);
    }
  }

  const PairSet& new_pairs = pairs_;  // post-delta view for the patching below

  // 1. Structural changes: a tree whose attribute set shrinks (an
  //    attribute left the universe) must be rebuilt; brand-new attributes
  //    get singleton trees. Everything else is patched in place below.
  std::vector<std::size_t> victims;
  std::vector<std::vector<AttrId>> new_sets;
  for (std::size_t i = 0; i < topology_.entries().size(); ++i) {
    const auto& attrs = topology_.entries()[i].attrs;
    if (!sets_intersect(attrs, removed_attrs)) continue;
    victims.push_back(i);
    adjusted_at_.erase(attrs);  // identity follows the (possibly shrunk) set
    auto kept = set_difference(attrs, removed_attrs);
    if (!kept.empty()) new_sets.push_back(std::move(kept));
  }
  for (AttrId a : added_attrs) {
    new_sets.push_back({a});
    stamp({a}, now);  // a brand-new tree starts its throttle window now
  }
  if (!victims.empty() || !new_sets.empty()) {
    // The evaluator's memo cache is synced to pairs_ by run_adaptation
    // before we get here, so rebuilds reuse trees memoized across calls —
    // churn that re-creates a recently seen (attrs, members, budgets) build
    // is served from cache, bit-identically.
    TreeBuildCache& cache = planner_.evaluator().cache();
    topology_ = rebuild_trees(topology_, *system_, pairs_, victims, new_sets,
                              planner_.options().attr_specs,
                              planner_.options().allocation,
                              planner_.options().tree,
                              cache.enabled() ? &cache : nullptr);
  }

  // 2. Pair-level changes: patch surviving trees with minimum topology
  //    impact — update member nodes' local counts in place, attach nodes
  //    that newly monitor a tree's attribute, and leave everything else
  //    untouched. This is what makes DIRECT-APPLY cheap in adaptation
  //    messages (and what lets its quality decay over time, Fig. 9).
  std::vector<std::vector<AttrId>> touched;
  for (auto& entry : topology_.mutable_entries()) {
    if (!sets_intersect(entry.attrs, changed_attrs)) continue;
    // Nodes with a changed pair on this tree's attributes.
    std::vector<NodeId> nodes;
    for (const auto& pr : delta.added)
      if (set_contains(entry.attrs, pr.attr)) nodes.push_back(pr.node);
    for (const auto& pr : delta.removed)
      if (set_contains(entry.attrs, pr.attr)) nodes.push_back(pr.node);
    sort_unique(nodes);
    if (nodes.empty()) continue;

    MonitoringTree& tree = entry.tree;
    // Bind the in-place patch to *global* budgets: the tree's stored
    // allocations date from build time, but the node may since have taken
    // work in other trees. Clamping avail to capacity minus other-tree
    // usage makes the within-tree feasibility checks exactly the global
    // constraint (clamp never goes below current usage because the
    // topology was globally valid coming in).
    auto clamp = [&](NodeId v) {
      const Capacity other = topology_.node_usage(v) - tree.usage(v);
      const Capacity bound =
          std::max(tree.usage(v), system_->capacity(v) - other);
      tree.set_avail(v, std::min(tree.avail(v), bound));
    };
    for (NodeId v : tree.members()) clamp(v);
    clamp(kCollectorId);
    for (NodeId n : nodes) {
      std::vector<std::uint32_t> desired(entry.attrs.size());
      bool any = false;
      for (std::size_t m = 0; m < entry.attrs.size(); ++m) {
        desired[m] = new_pairs.contains(n, entry.attrs[m]) ? 1u : 0u;
        any |= desired[m] != 0;
      }
      if (tree.contains(n)) {
        // Removals are always feasible; apply them first so stale values
        // stop flowing even when the additions do not fit.
        // remo-lint: allow(span-store) copied into old_local below before any mutation; old_span is dead once update_local runs
        const auto old_span = tree.local_counts(n);
        const std::vector<std::uint32_t> old_local(old_span.begin(),
                                                   old_span.end());
        std::vector<std::uint32_t> shrunk(entry.attrs.size());
        for (std::size_t m = 0; m < entry.attrs.size(); ++m)
          shrunk[m] = std::min(old_local[m], desired[m]);
        if (shrunk != old_local) tree.update_local(n, shrunk);
        if (desired != shrunk) tree.update_local(n, desired);  // best effort
      } else if (any) {
        // New member: attach at the shallowest vertex with capacity,
        // spending only this node's remaining global budget.
        BuildItem item{n, desired,
                       system_->capacity(n) - topology_.node_usage(n)};
        NodeId best = kNoNode;
        std::size_t best_depth = 0;
        auto consider = [&](NodeId v) {
          if (!tree.can_attach(item, v)) return;
          const std::size_t d = tree.depth(v);
          if (best == kNoNode || d < best_depth) {
            best = v;
            best_depth = d;
          }
        };
        consider(kCollectorId);
        for (NodeId v : tree.members()) consider(v);
        if (best != kNoNode) tree.attach(item, best);
      }
    }
    // Refresh the entry's accounting.
    entry.collected_pairs = tree.collected_pairs();
    entry.offered_pairs = 0;
    for (NodeId n : new_pairs.nodes_with_any(entry.attrs))
      entry.offered_pairs += new_pairs.count_at(n, entry.attrs);
    touched.push_back(entry.attrs);
  }

  // Rebuilt/new trees also need their offered counts refreshed against the
  // new pair set (rebuild_trees computed them already) and join T.
  for (const auto& s : new_sets) touched.push_back(s);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

void AdaptivePlanner::optimize(const PairSet& pairs,
                               std::vector<std::vector<AttrId>> rebuilt, double now,
                               AdaptReport& report) {
  const auto& opts = planner_.options();
  // run_adaptation already synced the evaluator's pair view (and evicted
  // exactly the memo entries the delta touched) before direct_apply ran.
  auto in_rebuilt = [&rebuilt](const std::vector<AttrId>& attrs) {
    return std::find(rebuilt.begin(), rebuilt.end(), attrs) != rebuilt.end();
  };

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    const Partition p = topology_.partition();  // sets in entry order
    const std::size_t k = p.num_sets();
    if (k == 0) return;

    // Enumerate candidate operations involving at least one tree in T,
    // using the planner's topology-aware gain estimates, then re-rank by
    // cost effectiveness: estimated benefit per estimated adaptation cost
    // (lower bound on the edges the operation would rewire, Sec. 4.1).
    std::vector<bool> mask(k);
    for (std::size_t i = 0; i < k; ++i) mask[i] = in_rebuilt(p.set(i));
    auto ranked = rank_topology_augmentations(topology_, pairs, system_->cost(),
                                              opts.conflicts, 0, &mask);
    std::vector<Augmentation> merges, splits;
    for (Augmentation aug : ranked) {
      double adapt_cost = 1.0;
      if (aug.kind == AugmentKind::kMerge) {
        adapt_cost += static_cast<double>(std::min(
            topology_.entries()[aug.set_a].tree.size(),
            topology_.entries()[aug.set_b].tree.size()));
      } else {
        adapt_cost += static_cast<double>(pairs.nodes_with(aug.attr).size());
      }
      aug.estimated_gain /= adapt_cost;  // gain now means effectiveness
      (aug.kind == AugmentKind::kMerge ? merges : splits).push_back(aug);
    }
    auto by_effectiveness = [](const Augmentation& a, const Augmentation& b) {
      return a.estimated_gain > b.estimated_gain;
    };
    std::stable_sort(merges.begin(), merges.end(), by_effectiveness);
    std::stable_sort(splits.begin(), splits.end(), by_effectiveness);

    // Evaluate each list in rank order until the first valid (improving)
    // operation (Sec. 4.1), then keep the better of the two. The engine
    // evaluates each list's prefix concurrently; the winner is the one a
    // serial scan would commit.
    const PlanScore current = score_of(topology_);
    PlanEvaluator& engine = planner_.evaluator();
    auto best_merge =
        engine.first_improving(topology_, pairs, merges, current, opts.max_candidates);
    auto best_split =
        engine.first_improving(topology_, pairs, splits, current, opts.max_candidates);
    std::optional<PlanEvaluator::Result> chosen;
    const Augmentation* chosen_aug = nullptr;
    if (best_merge && (!best_split || improves(best_merge->score, best_split->score))) {
      chosen_aug = &merges[best_merge->index];
      chosen = std::move(best_merge);
    } else if (best_split) {
      chosen_aug = &splits[best_split->index];
      chosen = std::move(best_split);
    }
    if (!chosen) return;
    const AugmentationFootprint fp = footprint(p, *chosen_aug);

    if (scheme_ == AdaptScheme::kAdaptive) {
      // Cost-benefit throttling (Sec. 4.2): Threshold(A_m) =
      // (T_cur - min T_adj,i) * (C_cur - C_adj). The paper's efficiency
      // term (C_cur - C_adj) presumes the operation keeps collected values
      // constant; an operation that *recovers* coverage necessarily pushes
      // more data and would read as negative benefit, so the benefit rate
      // also counts recovered values at their delivery cost (a per value
      // per unit time).
      const double m_adapt =
          static_cast<double>(edge_diff(topology_, chosen->topo));
      double t_min = std::numeric_limits<double>::infinity();
      for (std::size_t v : fp.victims)
        t_min = std::min(t_min, last_adjusted(p.set(v), now));
      const double c_cur = topology_.total_cost();
      const double c_adj = chosen->topo.total_cost();
      const double value_gain =
          system_->cost().per_value *
          (static_cast<double>(chosen->score.collected) -
           static_cast<double>(score_of(topology_).collected));
      const double gain_rate = std::max(0.0, c_cur - c_adj) + std::max(0.0, value_gain);
      const double threshold = (now - t_min) * gain_rate;
      if (!(m_adapt < threshold)) {
        ++report.operations_throttled;
        return;  // not cost-effective: terminate immediately (Sec. 4.2)
      }
    }

    // Adopt the operation; the new sets join T and restart their windows.
    for (std::size_t v : fp.victims) adjusted_at_.erase(p.set(v));
    for (const auto& s : fp.new_sets) {
      stamp(s, now);
      if (std::find(rebuilt.begin(), rebuilt.end(), s) == rebuilt.end())
        rebuilt.push_back(s);
    }
    topology_ = std::move(chosen->topo);
    ++report.operations_applied;
  }
}

AdaptReport AdaptivePlanner::run_adaptation(const PairSetDelta& delta, double now,
                                            std::size_t updates_coalesced) {
  const auto start = std::chrono::steady_clock::now();
  const double cpu_start = cpu_seconds_now();
  AdaptReport report;
  report.updates_coalesced = updates_coalesced;
  report.pairs_changed = delta.size();
  const Topology before = topology_;
  EvalStats stats_base = planner_.last_stats();

  // Advance the evaluation engine's pair view *before* any rebuild so
  // direct_apply's tree rebuilds hit the memo cache, and so only entries
  // the delta touches are evicted. apply_pairs_delta is O(|delta|); the
  // full sync only runs on the first call after construction.
  PlanEvaluator& engine = planner_.evaluator();
  if (scheme_ != AdaptScheme::kRebuild) {
    if (engine.synced_pairs() == nullptr) {
      engine.sync_pairs(pairs_);
    } else {
      engine.apply_pairs_delta(delta);
      if (validation_enabled()) {
        REMO_VALIDATE(*engine.synced_pairs() == pairs_,
                      "evaluation engine's pair view drifted from the adaptive "
                      "planner's after an incremental advance of ", delta.size(),
                      " pairs");
      }
    }
  }

  switch (scheme_) {
    case AdaptScheme::kRebuild: {
      topology_ = planner_.plan(pairs_);
      adjusted_at_.clear();
      for (const auto& e : topology_.entries()) stamp(e.attrs, now);
      break;
    }
    case AdaptScheme::kDirectApply: {
      direct_apply(delta, now);
      break;
    }
    case AdaptScheme::kNoThrottle:
    case AdaptScheme::kAdaptive: {
      auto rebuilt = direct_apply(delta, now);
      optimize(pairs_, std::move(rebuilt), now, report);
      break;
    }
  }

  topology_.set_total_pairs(pairs_.total_pairs());
  report.planning_wall_seconds = seconds_since(start);
  report.planning_cpu_seconds = cpu_seconds_now() - cpu_start;
  report.adaptation_messages = edge_diff(before, topology_);
  report.score = score_of(topology_);
  if (scheme_ == AdaptScheme::kRebuild) stats_base = EvalStats{};  // plan() reset
  const EvalStats stats = planner_.last_stats();
  report.candidates_evaluated = stats.evaluations - stats_base.evaluations;
  report.cache_hits = stats.cache_hits - stats_base.cache_hits;

  if (!delta.empty()) {
    metrics_.replans->add(1);
    metrics_.pairs_changed->add(delta.size());
    metrics_.replan_seconds->observe(report.planning_wall_seconds);
    tracker_.observe_replan_cost(report.planning_wall_seconds);
  }
  return report;
}

AdaptReport AdaptivePlanner::apply_update(const PairSet& new_pairs, double now) {
  metrics_.updates->add(1);
  PairSetDelta delta = diff(pairs_, new_pairs);
  pairs_ = new_pairs;
  return run_adaptation(delta, now, delta.empty() ? 0 : 1);
}

AdaptReport AdaptivePlanner::apply_delta(const TaskDelta& delta, double now) {
  metrics_.updates->add(1);
  PairSetDelta scoped = clamp_to_vertices(delta.pairs, pairs_.num_vertices());
  ::remo::apply_delta(pairs_, scoped);  // the free pair-set helper, not this method
  return run_adaptation(scoped, now, scoped.empty() ? 0 : 1);
}

void AdaptivePlanner::enqueue_delta(const TaskDelta& delta, double now) {
  metrics_.updates->add(1);
  if (has_pending()) metrics_.coalesced->add(1);
  TaskDelta scoped;
  scoped.pairs = clamp_to_vertices(delta.pairs, pairs_.num_vertices());
  scoped.tasks_touched = delta.tasks_touched;
  tracker_.enqueue(scoped, now);
}

AdaptReport AdaptivePlanner::flush(double now) {
  if (!has_pending()) {
    AdaptReport report;
    report.score = score_of(topology_);
    return report;
  }
  const std::size_t burst = tracker_.coalesced_updates();
  const TaskDelta pending = tracker_.take(now);
  ::remo::apply_delta(pairs_, pending.pairs);
  return run_adaptation(pending.pairs, now, burst);
}

}  // namespace remo
