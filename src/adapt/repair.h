// Self-healing topology repair (the repair half of the detect → repair →
// replan loop, see DESIGN.md). Given the set of suspected-down nodes from
// the collector's liveness tracker, detaches every suspected branch and
// re-homes the detached members so the overlay keeps delivering while the
// outage lasts:
//
//   - members NOT suspected (orphans silenced by a dead ancestor) are
//     re-attached at the shallowest feasible surviving vertex — the
//     collector when it has capacity, otherwise a healthy member;
//   - suspected members themselves are re-attached last, the same way.
//     This keeps a probe path alive: a falsely-suspected (or later
//     recovering) node resumes delivering the moment it is back, which is
//     what lets the liveness tracker observe the recovery. A truly dead
//     node on a leaf link blocks nobody.
//
// Capacity feasibility is enforced against the *global* remaining budget
// (the node may serve other trees); a member with no feasible attach point
// anywhere is dropped from the tree and its pairs are lost until the
// post-outage replan. This is a greedy degraded-mode patch, not an
// optimization: once the outage stabilizes, the operational loop hands
// the topology back to the AdaptivePlanner for cost re-optimization.
#pragma once

#include <cstddef>
#include <vector>

#include "planner/topology.h"
#include "task/pair_set.h"

namespace remo {

struct RepairOutcome {
  /// Trees that contained at least one suspected member.
  std::size_t trees_touched = 0;
  /// Healthy members re-homed (orphans of a dead ancestor).
  std::size_t orphans_reattached = 0;
  /// Suspected members re-attached on probe links.
  std::size_t suspects_parked = 0;
  /// Members with no feasible attach point (removed from their tree).
  std::size_t members_dropped = 0;
  /// Local pairs lost with the dropped members.
  std::size_t pairs_dropped = 0;
  /// Links torn down + established relative to the input topology — the
  /// control messages spent on the repair (multiset edge diff).
  std::size_t repair_messages = 0;
};

struct RepairResult {
  Topology topo;
  RepairOutcome outcome;
};

/// Repairs `topo` around `suspected` (sorted or not; deduplicated
/// internally). Deterministic: ties in attach-point selection break by
/// (depth, node id). The input topology is untouched.
RepairResult repair_topology(const Topology& topo, const SystemModel& system,
                             const std::vector<NodeId>& suspected);

/// Parks `members` that are absent from `topo` — typically suspects the
/// post-outage replan deliberately planned around (planning a dead node in
/// and then breaking the plan would re-orphan whole subtrees). For every
/// tree whose attribute partition covers some of a member's pairs, a leaf
/// BuildItem is synthesized from `pairs` and attached at the shallowest
/// feasible non-member vertex; tree avails are first re-bound to the
/// global remaining budget (relaxing, as in repair_topology), so the
/// planner's reserved headroom is spendable. Members already present in a
/// tree, or with no pairs in its partition, are skipped; members with no
/// feasible spot anywhere are counted dropped. Modifies `topo` in place;
/// `repair_messages` is left 0 (the caller diffs against its own before).
RepairOutcome park_members(Topology& topo, const SystemModel& system,
                           const std::vector<NodeId>& members,
                           const PairSet& pairs);

}  // namespace remo
