// Runtime topology adaptation (Sec. 4). When monitoring tasks are added,
// removed, or modified, the planner must trade topology quality against
// adaptation cost. Four schemes, matching the Fig. 9 comparison:
//
//   DIRECT-APPLY  apply the task change with minimum topology change: keep
//                 the attribute partition (new attributes become singleton
//                 sets) and rebuild only the affected trees;
//   REBUILD       full REMO search from scratch on every change — best
//                 topology, highest planning + reconstruction cost;
//   NO-THROTTLE   DIRECT-APPLY to get a base topology, then local search
//                 restricted to operations involving a reconstructed tree
//                 (the set T of Sec. 4.1), ranked by estimated
//                 cost-effectiveness;
//   ADAPTIVE      NO-THROTTLE plus cost-benefit throttling (Sec. 4.2): an
//                 operation is applied only when its control-message volume
//                 M_adapt stays below
//                   (T_cur − min T_adj,i) · (C_cur − C_adj).
//
// Delta replanning (DESIGN.md §13): besides the historic full-pair-set
// apply_update, the planner accepts structured TaskDeltas — apply_delta
// runs the identical adaptation core seeded straight from the delta (no
// full-set diff, no pair-set copy), and enqueue_delta/should_flush/flush
// coalesce bursts through a DeltaTracker so replans amortize under
// sustained churn. Both entry points share run_adaptation, so delta-driven
// plans are bit-identical to full-pair-set plans on the same sequence.
#pragma once

#include <map>
#include <vector>

#include "adapt/delta_tracker.h"
#include "obs/metrics.h"
#include "planner/planner.h"
#include "task/task_delta.h"

namespace remo {

enum class AdaptScheme : std::uint8_t {
  kDirectApply,
  kRebuild,
  kNoThrottle,
  kAdaptive,
};

const char* to_string(AdaptScheme s) noexcept;

/// What one initialize()/apply_update() call did — the raw series behind
/// Fig. 9a-9d.
struct AdaptReport {
  /// Wall-clock seconds spent planning (searching, building candidate
  /// trees). With the parallel evaluator this is elapsed time, not work.
  double planning_wall_seconds = 0.0;
  /// Process CPU seconds spent planning — the summed work across the
  /// evaluation engine's threads; diverges from wall by up to the engine's
  /// concurrency. (The historic `planning_seconds` field claimed CPU but
  /// measured wall clock; it is split into these two.)
  double planning_cpu_seconds = 0.0;
  /// Task-churn updates this report covers: 1 for a direct apply_update /
  /// apply_delta, the burst size for a coalesced flush(), 0 for a no-op.
  std::size_t updates_coalesced = 0;
  /// Pairs added + removed by the (coalesced) delta this call applied.
  std::size_t pairs_changed = 0;
  /// Control messages needed to morph the deployed topology into the new
  /// one (multiset edge diff) — M_adapt.
  std::size_t adaptation_messages = 0;
  /// Merge/split operations adopted by the local search.
  std::size_t operations_applied = 0;
  /// Operations rejected by cost-benefit throttling.
  std::size_t operations_throttled = 0;
  /// Candidate topologies built & scored by the evaluation engine during
  /// this call, and how many memoized tree builds it reused (see
  /// planner/evaluator.h).
  std::size_t candidates_evaluated = 0;
  std::size_t cache_hits = 0;
  PlanScore score;
};

class AdaptivePlanner {
 public:
  AdaptivePlanner(const SystemModel& system, PlannerOptions options,
                  AdaptScheme scheme, DeltaTrackerOptions tracker_options = {});

  const Topology& topology() const noexcept { return topology_; }
  AdaptScheme scheme() const noexcept { return scheme_; }
  const PairSet& pairs() const noexcept { return pairs_; }

  /// Initial full plan (all schemes plan identically at t = `now`).
  AdaptReport initialize(const PairSet& pairs, double now);

  /// Applies a task-set change: `new_pairs` replaces the previous pair set.
  AdaptReport apply_update(const PairSet& new_pairs, double now);

  /// Incremental form of apply_update: advances the pair set by `delta`
  /// (pairs on nodes outside the vertex range are ignored, like dedup)
  /// and runs the same adaptation core — bit-identical to apply_update
  /// with the equivalent full pair set, at O(|delta|) instead of
  /// O(|pairs|) overhead outside the search itself.
  AdaptReport apply_delta(const TaskDelta& delta, double now);

  /// Burst-coalescing churn path: enqueue deltas as they arrive, replan
  /// only when the tracker's amortized Sec. 4.2-style bound says deferral
  /// stopped being cheaper (or at a forced flush).
  void enqueue_delta(const TaskDelta& delta, double now);
  bool has_pending() const noexcept { return !tracker_.empty(); }
  bool should_flush(double now) const { return tracker_.should_flush(now); }
  /// Replans over the coalesced pending delta (no-op report when nothing
  /// is pending).
  AdaptReport flush(double now);
  const DeltaTracker& tracker() const noexcept { return tracker_; }

  /// Replaces the deployed topology in place — the self-healing repair
  /// path (adapt/repair.h): subsequent apply_update calls adapt from the
  /// repaired forest. Trees whose attribute set is new to the throttle
  /// bookkeeping start their adjustment window at `now`.
  void adopt(Topology topo, double now);

  // ---- snapshot/restore (service/snapshot.h, DESIGN.md §14) -------------
  /// The throttle's per-tree adjustment stamps (T_adj,i), sorted by
  /// attribute set — plan-affecting state a snapshot must carry.
  const std::map<std::vector<AttrId>, double>& adjustment_stamps() const noexcept {
    return adjusted_at_;
  }
  double init_time() const noexcept { return init_time_; }
  /// Wholesale-replaces the planner's plan state with a previously
  /// captured one: pair set, deployed forest, throttle stamps, and the
  /// tracker's replan-cost EWMA. The planner must be freshly constructed
  /// (same system + options as the captured one); subsequent
  /// apply_update / apply_delta calls continue bit-identically to the
  /// planner the state was captured from.
  void restore(PairSet pairs, Topology topo,
               std::map<std::vector<AttrId>, double> stamps, double init_time,
               double replan_cost_estimate);

 private:
  struct DeltaMetrics {
    obs::Counter* updates = nullptr;        ///< deltas fed in
    obs::Counter* coalesced = nullptr;      ///< deltas merged into a pending burst
    obs::Counter* replans = nullptr;        ///< non-empty adaptation runs
    obs::Counter* pairs_changed = nullptr;  ///< Σ |delta| over replans
    obs::Histogram* replan_seconds = nullptr;  ///< wall latency per replan
  };

  /// Shared adaptation core: `delta` is the exact change that advanced
  /// pairs_ (already applied); runs the scheme, refreshes accounting, and
  /// emits the report + planner.delta.* telemetry.
  AdaptReport run_adaptation(const PairSetDelta& delta, double now,
                             std::size_t updates_coalesced);

  /// DIRECT-APPLY base step: rebuild exactly the trees whose attribute
  /// sets intersect the update, keeping the partition otherwise. Returns
  /// the indices-agnostic set of rebuilt attr sets (the set T). `delta`
  /// is the change that produced the current pairs_.
  std::vector<std::vector<AttrId>> direct_apply(const PairSetDelta& delta, double now);

  /// The Sec. 4.1 restricted local search over the base topology.
  void optimize(const PairSet& pairs, std::vector<std::vector<AttrId>> rebuilt,
                double now, AdaptReport& report);

  double last_adjusted(const std::vector<AttrId>& attrs, double now) const;
  void stamp(const std::vector<AttrId>& attrs, double now);

  const SystemModel* system_;
  Planner planner_;
  AdaptScheme scheme_;
  Topology topology_;
  PairSet pairs_;
  /// Last-adjusted time per tree, keyed by the tree's attribute set
  /// (T_adj,i in the throttle formula).
  std::map<std::vector<AttrId>, double> adjusted_at_;
  double init_time_ = 0.0;
  DeltaTracker tracker_;
  DeltaMetrics metrics_;
};

}  // namespace remo
