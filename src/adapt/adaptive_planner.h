// Runtime topology adaptation (Sec. 4). When monitoring tasks are added,
// removed, or modified, the planner must trade topology quality against
// adaptation cost. Four schemes, matching the Fig. 9 comparison:
//
//   DIRECT-APPLY  apply the task change with minimum topology change: keep
//                 the attribute partition (new attributes become singleton
//                 sets) and rebuild only the affected trees;
//   REBUILD       full REMO search from scratch on every change — best
//                 topology, highest planning + reconstruction cost;
//   NO-THROTTLE   DIRECT-APPLY to get a base topology, then local search
//                 restricted to operations involving a reconstructed tree
//                 (the set T of Sec. 4.1), ranked by estimated
//                 cost-effectiveness;
//   ADAPTIVE      NO-THROTTLE plus cost-benefit throttling (Sec. 4.2): an
//                 operation is applied only when its control-message volume
//                 M_adapt stays below
//                   (T_cur − min T_adj,i) · (C_cur − C_adj).
#pragma once

#include <map>
#include <vector>

#include "planner/planner.h"

namespace remo {

enum class AdaptScheme : std::uint8_t {
  kDirectApply,
  kRebuild,
  kNoThrottle,
  kAdaptive,
};

const char* to_string(AdaptScheme s) noexcept;

/// What one initialize()/apply_update() call did — the raw series behind
/// Fig. 9a-9d.
struct AdaptReport {
  /// CPU seconds spent planning (searching, building candidate trees).
  double planning_seconds = 0.0;
  /// Control messages needed to morph the deployed topology into the new
  /// one (multiset edge diff) — M_adapt.
  std::size_t adaptation_messages = 0;
  /// Merge/split operations adopted by the local search.
  std::size_t operations_applied = 0;
  /// Operations rejected by cost-benefit throttling.
  std::size_t operations_throttled = 0;
  /// Candidate topologies built & scored by the evaluation engine during
  /// this call, and how many memoized tree builds it reused (see
  /// planner/evaluator.h).
  std::size_t candidates_evaluated = 0;
  std::size_t cache_hits = 0;
  PlanScore score;
};

class AdaptivePlanner {
 public:
  AdaptivePlanner(const SystemModel& system, PlannerOptions options,
                  AdaptScheme scheme);

  const Topology& topology() const noexcept { return topology_; }
  AdaptScheme scheme() const noexcept { return scheme_; }

  /// Initial full plan (all schemes plan identically at t = `now`).
  AdaptReport initialize(const PairSet& pairs, double now);

  /// Applies a task-set change: `new_pairs` replaces the previous pair set.
  AdaptReport apply_update(const PairSet& new_pairs, double now);

  /// Replaces the deployed topology in place — the self-healing repair
  /// path (adapt/repair.h): subsequent apply_update calls adapt from the
  /// repaired forest. Trees whose attribute set is new to the throttle
  /// bookkeeping start their adjustment window at `now`.
  void adopt(Topology topo, double now);

 private:
  /// DIRECT-APPLY base step: rebuild exactly the trees whose attribute
  /// sets intersect the update, keeping the partition otherwise. Returns
  /// the indices-agnostic set of rebuilt attr sets (the set T).
  std::vector<std::vector<AttrId>> direct_apply(const PairSet& new_pairs, double now);

  /// The Sec. 4.1 restricted local search over the base topology.
  void optimize(const PairSet& pairs, std::vector<std::vector<AttrId>> rebuilt,
                double now, AdaptReport& report);

  double last_adjusted(const std::vector<AttrId>& attrs, double now) const;
  void stamp(const std::vector<AttrId>& attrs, double now);

  const SystemModel* system_;
  Planner planner_;
  AdaptScheme scheme_;
  Topology topology_;
  PairSet pairs_;
  /// Last-adjusted time per tree, keyed by the tree's attribute set
  /// (T_adj,i in the throttle formula).
  std::map<std::vector<AttrId>, double> adjusted_at_;
  double init_time_ = 0.0;
};

}  // namespace remo
