// Contract macros (DESIGN.md §11): the three enforcement tiers every REMO
// invariant check goes through.
//
//   REMO_ASSERT(cond, ...)   always on, every build type. For contracts whose
//                            violation means the process is about to compute
//                            a wrong plan or corrupt a tree. Prints the
//                            expression, location, and the formatted context
//                            arguments (streamed, so pass the violated
//                            quantities: `REMO_ASSERT(u <= b, "usage=", u,
//                            " budget=", b)`), then aborts.
//   REMO_DCHECK(cond, ...)   compiled in only when REMO_DCHECK_ENABLED —
//                            debug builds (!NDEBUG) and sanitizer builds
//                            (REMO_SANITIZE defines REMO_FORCE_DCHECK). For
//                            checks too hot for release binaries: per-access
//                            view-freshness checks, per-hop walk guards.
//   REMO_VALIDATE(cond, ...) runtime-gated deep validation: evaluated only
//                            while remo::validation_enabled() — initialized
//                            from the REMO_VALIDATE environment variable and
//                            overridable with set_validation_enabled(). For
//                            whole-structure re-checks (MonitoringTree::
//                            validate(), Topology::validate(), planner /
//                            task-manager / repair invariant hooks) that are
//                            O(system) per mutating operation: `ctest -L
//                            validate` runs the recovery and builder suites
//                            with the gate on; production pays one relaxed
//                            atomic load per hook site.
//
// REMO_ASSERT is usable inside constexpr functions: the failure branch calls
// a non-constexpr handler, so a violation during constant evaluation is a
// compile error and a violation at runtime aborts with context.
#pragma once

#include <sstream>
#include <string>

#if !defined(NDEBUG) || defined(REMO_FORCE_DCHECK)
#define REMO_DCHECK_ENABLED 1
#else
#define REMO_DCHECK_ENABLED 0
#endif

namespace remo {

/// True while deep REMO_VALIDATE checks are live. First call reads the
/// REMO_VALIDATE environment variable (enabled iff set to anything but "" or
/// "0"); set_validation_enabled() overrides it at any point (tests flip it
/// on in SetUp so the gate does not depend on the harness environment).
bool validation_enabled() noexcept;
void set_validation_enabled(bool on) noexcept;

namespace detail {

[[noreturn]] void assert_fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& context);

template <typename... Ts>
std::string format_context(const Ts&... parts) {
  if constexpr (sizeof...(parts) == 0) {
    return std::string();
  } else {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  }
}

}  // namespace detail
}  // namespace remo

#define REMO_ASSERT(cond, ...)                                       \
  (static_cast<bool>(cond)                                           \
       ? static_cast<void>(0)                                        \
       : ::remo::detail::assert_fail(                                \
             "REMO_ASSERT", #cond, __FILE__, __LINE__,               \
             ::remo::detail::format_context(__VA_ARGS__)))

#if REMO_DCHECK_ENABLED
#define REMO_DCHECK(cond, ...)                                       \
  (static_cast<bool>(cond)                                           \
       ? static_cast<void>(0)                                        \
       : ::remo::detail::assert_fail(                                \
             "REMO_DCHECK", #cond, __FILE__, __LINE__,               \
             ::remo::detail::format_context(__VA_ARGS__)))
#else
#define REMO_DCHECK(cond, ...) static_cast<void>(0)
#endif

#define REMO_VALIDATE(cond, ...)                                     \
  do {                                                               \
    if (::remo::validation_enabled()) {                              \
      if (!static_cast<bool>(cond)) {                                \
        ::remo::detail::assert_fail(                                 \
            "REMO_VALIDATE", #cond, __FILE__, __LINE__,              \
            ::remo::detail::format_context(__VA_ARGS__));            \
      }                                                              \
    }                                                                \
  } while (false)
