#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace remo {

namespace {

// -1 = not yet initialized from the environment.
std::atomic<int> g_validation{-1};

int validation_from_env() noexcept {
  const char* v = std::getenv("REMO_VALIDATE");
  return (v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0) ? 1 : 0;
}

}  // namespace

bool validation_enabled() noexcept {
  int v = g_validation.load(std::memory_order_relaxed);
  if (v < 0) {
    // Racing first calls all compute the same value; the store is idempotent.
    v = validation_from_env();
    g_validation.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_validation_enabled(bool on) noexcept {
  g_validation.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {

void assert_fail(const char* kind, const char* expr, const char* file,
                 int line, const std::string& context) {
  // One stderr write per field: abort handlers and death tests both scrape
  // this output, so keep it line-oriented and flush before aborting.
  std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n", kind, expr, file, line);
  if (!context.empty()) std::fprintf(stderr, "  context: %s\n", context.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace remo
