// Deterministic pseudo-random number generation for reproducible
// experiments. All REMO workload generators and simulators take an explicit
// Rng so that every figure in EXPERIMENTS.md can be regenerated bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace remo {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, and — unlike
/// std::mt19937 — guaranteed to produce identical streams across standard
/// library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    auto next = [&seed]() noexcept {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless bounded generation (rejection variant).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = sqrt_impl(-2.0 * log_impl(s) / s);
    spare_ = v * f;
    has_spare_ = true;
    return u * f;
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Sample k distinct values from [0, n) (k <= n), in random order.
  std::vector<std::uint32_t> sample(std::uint32_t n, std::uint32_t k);

  /// Derive an independent child generator (for parallel substreams).
  Rng fork() noexcept { return Rng{(*this)() ^ 0xa0761d6478bd642fULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  // Avoid <cmath> in the header to keep it light; defined in rng.cpp.
  static double sqrt_impl(double) noexcept;
  static double log_impl(double) noexcept;

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace remo
