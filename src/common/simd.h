// Vectorized integer kernels for the tree arena's per-attribute count rows
// (DESIGN.md §15). Every kernel is pure integer arithmetic, so the SIMD and
// scalar paths return bit-identical results in any lane order — this is what
// lets the planner keep its bit-identical-plan guarantee while the kernels
// are runtime-toggled (REMO_SIMD=0 env, or simd::set_enabled(false) in the
// determinism property tests).
//
// Layout contract: the tree arena pads each count row to kU32Lanes elements
// (kAlign bytes) and allocates the backing vectors with AlignedVector, so a
// row never straddles more cache lines than necessary and full-width vector
// loops need no scalar tail. Padding elements are always zero; kernels may
// therefore run over either the logical or the padded width.
//
// The explicit AVX2 path is compiled only when the TU is built with AVX2
// enabled (-DREMO_SIMD=ON / -march=x86-64-v3); otherwise the portable loops
// below are written to auto-vectorize under -O2.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#define REMO_SIMD_AVX2 1
#else
#define REMO_SIMD_AVX2 0
#endif

namespace remo::simd {

/// Row alignment in bytes: one cache line, which is also the AVX-512
/// register width — rows padded to this never split a vector load.
inline constexpr std::size_t kAlign = 64;
/// uint32 lanes per aligned row block.
inline constexpr std::size_t kU32Lanes = kAlign / sizeof(std::uint32_t);

/// Padded row width for `n` attributes: the smallest multiple of kU32Lanes
/// holding n (0 stays 0 — an attribute-less tree has empty rows).
constexpr std::size_t padded_count(std::size_t n) noexcept {
  return (n + kU32Lanes - 1) / kU32Lanes * kU32Lanes;
}

namespace detail {
/// Runtime switch. Initialized from the REMO_SIMD environment variable
/// ("0"/"off" disables); relaxed atomics — the toggle is a pure performance
/// switch, results are bit-identical either way.
extern std::atomic<bool> g_enabled;
}  // namespace detail

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
/// Whether this binary carries the explicit AVX2 kernels at all.
constexpr bool compiled_with_avx2() noexcept { return REMO_SIMD_AVX2 != 0; }

/// Minimal C++17 aligned allocator: every allocation is kAlign-aligned, so
/// row 0 of an AlignedVector-backed arena is aligned and — with padded
/// strides — so is every subsequent row, across every reallocation.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlign});
  }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

// ---- kernels ---------------------------------------------------------------
// All loads are unaligned-tolerant (callers sometimes pass plain
// std::vector-backed rows, e.g. BuildItem locals); alignment is a locality
// optimization, not a correctness requirement.

/// Σ row[0..n) as an exact 64-bit integer.
inline std::uint64_t sum_u32(const std::uint32_t* row, std::size_t n) noexcept {
#if REMO_SIMD_AVX2
  if (enabled() && n >= 8) {
    __m256i acc = _mm256_setzero_si256();
    std::size_t m = 0;
    for (; m + 8 <= n; m += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + m));
      acc = _mm256_add_epi64(acc, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v)));
      acc = _mm256_add_epi64(acc,
                             _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1)));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    std::uint64_t s = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; m < n; ++m) s += row[m];
    return s;
  }
#endif
  std::uint64_t s = 0;
  for (std::size_t m = 0; m < n; ++m) s += row[m];
  return s;
}

/// Σ v[0..n) (exact; the walk-delta rows hold signed out-count deltas).
inline std::int64_t sum_i64(const std::int64_t* v, std::size_t n) noexcept {
#if REMO_SIMD_AVX2
  if (enabled() && n >= 4) {
    __m256i acc = _mm256_setzero_si256();
    std::size_t m = 0;
    for (; m + 4 <= n; m += 4)
      acc = _mm256_add_epi64(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + m)));
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    std::int64_t s = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; m < n; ++m) s += v[m];
    return s;
  }
#endif
  std::int64_t s = 0;
  for (std::size_t m = 0; m < n; ++m) s += v[m];
  return s;
}

/// True iff any of v[0..n) is nonzero.
inline bool any_nonzero_i64(const std::int64_t* v, std::size_t n) noexcept {
#if REMO_SIMD_AVX2
  if (enabled() && n >= 4) {
    __m256i acc = _mm256_setzero_si256();
    std::size_t m = 0;
    for (; m + 4 <= n; m += 4)
      acc = _mm256_or_si256(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + m)));
    if (!_mm256_testz_si256(acc, acc)) return true;
    for (; m < n; ++m)
      if (v[m] != 0) return true;
    return false;
  }
#endif
  for (std::size_t m = 0; m < n; ++m)
    if (v[m] != 0) return true;
  return false;
}

/// row[m] = uint32(int64(row[m]) + delta[m]) for m in [0, n) — the in-count
/// update of a propagation hop. Deltas never underflow a live row (they are
/// exact inverse sums of child contributions), so the narrowing cast is the
/// same value the scalar kernel computes.
inline void add_i64_to_u32(std::uint32_t* row, const std::int64_t* delta,
                           std::size_t n) noexcept {
#if REMO_SIMD_AVX2
  if (enabled() && n >= 4) {
    const __m256i pick_lo = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    std::size_t m = 0;
    for (; m + 4 <= n; m += 4) {
      const __m128i r = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + m));
      const __m256i wide = _mm256_add_epi64(
          _mm256_cvtepu32_epi64(r),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(delta + m)));
      const __m256i packed = _mm256_permutevar8x32_epi32(wide, pick_lo);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(row + m),
                       _mm256_castsi256_si128(packed));
    }
    for (; m < n; ++m)
      row[m] = static_cast<std::uint32_t>(static_cast<std::int64_t>(row[m]) +
                                          delta[m]);
    return;
  }
#endif
  for (std::size_t m = 0; m < n; ++m)
    row[m] =
        static_cast<std::uint32_t>(static_cast<std::int64_t>(row[m]) + delta[m]);
}

/// dst[m] = sign * int64(src[m]) for m in [0, n) — loads a signed walk-delta
/// row from an unsigned out-count row.
inline void load_i64_from_u32(std::int64_t* dst, const std::uint32_t* src,
                              std::size_t n, std::int64_t sign) noexcept {
#if REMO_SIMD_AVX2
  if (enabled() && n >= 4) {
    std::size_t m = 0;
    for (; m + 4 <= n; m += 4) {
      const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + m));
      const __m256i wide = _mm256_cvtepu32_epi64(s);
      const __m256i neg = _mm256_sub_epi64(_mm256_setzero_si256(), wide);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + m),
                          sign < 0 ? neg : wide);
    }
    for (; m < n; ++m) dst[m] = sign * static_cast<std::int64_t>(src[m]);
    return;
  }
#endif
  for (std::size_t m = 0; m < n; ++m) dst[m] = sign * static_cast<std::int64_t>(src[m]);
}

}  // namespace remo::simd
