#include "common/thread_pool.h"

#include <atomic>
#include <exception>

namespace remo {

/// One parallel_for invocation. Kept alive by shared_ptr: a worker that
/// wakes up late must still be able to observe the job (and find it
/// drained) after the caller has returned.
struct ThreadPool::Job {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};       // next index to claim
  std::atomic<std::size_t> completed{0};  // indices fully executed
  std::mutex done_mutex;
  std::condition_variable done;
  std::exception_ptr error;  // first exception raised by fn, if any
};

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::run(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.done_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      // Take the lock before notifying so a caller between its predicate
      // check and its wait cannot miss the wakeup.
      std::lock_guard<std::mutex> lock(job.done_mutex);
      job.done.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return stop_ || (job_ != nullptr && job_generation_ != seen); });
    if (stop_) return;
    seen = job_generation_;
    std::shared_ptr<Job> job = job_;
    lock.unlock();
    run(*job);
    job.reset();
    lock.lock();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_generation_;
  }
  wake_.notify_all();
  run(*job);  // the caller is a worker too
  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) >= job->n;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job_ == job) job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace remo
