#include "common/thread_pool.h"

#include <atomic>
#include <exception>

namespace remo {

/// One parallel_for invocation. Kept alive by shared_ptr: a worker that
/// wakes up late must still be able to observe the job (and find it
/// drained) after the caller has returned. `n` and `fn` are set before the
/// job is published under the pool mutex and never written again.
struct ThreadPool::Job {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};       // next index to claim
  std::atomic<std::size_t> completed{0};  // indices fully executed
  Mutex done_mutex;
  CondVar done;
  /// First exception raised by fn, if any. The caller's final read is
  /// also under done_mutex: the atomic release chain on `completed` makes
  /// the unguarded read safe in practice, but the lock keeps the proof
  /// local — and it is one uncontended acquire after the loop drained.
  std::exception_ptr error REMO_GUARDED_BY(done_mutex);
};

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    // remo-lint: allow(naked-thread) pool workers, joined in ~ThreadPool
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::run(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    try {
      (*job.fn)(i);
    } catch (...) {
      MutexLock lock(job.done_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      // Take the lock before notifying so a caller between its predicate
      // check and its wait cannot miss the wakeup.
      MutexLock lock(job.done_mutex);
      job.done.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  MutexLock lock(mutex_);
  for (;;) {
    while (!stop_ && (job_ == nullptr || job_generation_ == seen))
      wake_.wait(mutex_);
    if (stop_) return;
    seen = job_generation_;
    std::shared_ptr<Job> job = job_;
    lock.unlock();
    run(*job);
    job.reset();
    lock.lock();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  {
    MutexLock lock(mutex_);
    job_ = job;
    ++job_generation_;
  }
  wake_.notify_all();
  run(*job);  // the caller is a worker too
  std::exception_ptr error;
  {
    MutexLock lock(job->done_mutex);
    while (job->completed.load(std::memory_order_acquire) < job->n)
      job->done.wait(job->done_mutex);
    error = job->error;
  }
  {
    MutexLock lock(mutex_);
    if (job_ == job) job_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace remo
