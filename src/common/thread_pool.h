// A fixed-size worker pool for data-parallel loops (no work stealing, no
// task graph). The planner's evaluation engine uses it to score candidate
// topologies concurrently; determinism is preserved because parallel_for
// assigns each index its own output slot and the caller decides winners by
// index, never by completion order.
//
// Lock discipline (machine-checked under -DREMO_TSA=ON, DESIGN.md §16):
// `mutex_` guards the job hand-off state (job_, job_generation_, stop_);
// workers take it only to pick up or wait for a job, never while running
// one. Per-job completion state lives in Job (see thread_pool.cpp), under
// the job's own `done_mutex`.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace remo {

class ThreadPool {
 public:
  /// Spawns `workers` threads. The intended sizing for a pool backing
  /// `parallel_for` is concurrency − 1: the calling thread participates in
  /// every loop, so a pool of N−1 workers yields N-way parallelism.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (excludes the calling thread).
  std::size_t workers() const noexcept { return threads_.size(); }

  /// Runs fn(0) … fn(n-1), each exactly once, across the workers plus the
  /// calling thread; blocks until all complete. Indices are claimed from an
  /// atomic counter, so the *assignment* of index to thread is racy but the
  /// set of executed indices is not. If any fn throws, the first exception
  /// (by completion order) is rethrown in the caller after the loop drains.
  /// Serial fallback (no pool involvement) when the pool has no workers.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      REMO_EXCLUDES(mutex_);

  /// Default concurrency: hardware_concurrency, floored at 1.
  static std::size_t default_concurrency();

 private:
  struct Job;
  void worker_loop() REMO_EXCLUDES(mutex_);
  static void run(Job& job);

  Mutex mutex_;
  CondVar wake_;
  /// Current job, null when idle.
  std::shared_ptr<Job> job_ REMO_GUARDED_BY(mutex_);
  std::uint64_t job_generation_ REMO_GUARDED_BY(mutex_) = 0;
  bool stop_ REMO_GUARDED_BY(mutex_) = false;
  /// Written only by the constructor/destructor (no concurrent access).
  /// The pool is the sanctioned thread owner in src/:
  // remo-lint: allow(naked-thread) workers joined in ~ThreadPool, no detach
  std::vector<std::thread> threads_;
};

}  // namespace remo
