#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace remo {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return add(std::string(buf));
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << s;
      if (c + 1 < width.size()) os << std::string(width[c] - s.size() + 2, ' ');
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace remo
