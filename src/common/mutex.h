// Annotated mutex wrappers (DESIGN.md §16): `remo::Mutex`, the RAII
// `remo::MutexLock`, and `remo::CondVar`, carrying the Clang TSA
// capability annotations from common/annotations.h. On GCC (the default
// local toolchain) the annotations expand to nothing and these classes
// compile to exactly `std::mutex` / `std::lock_guard` semantics — the
// wrappers exist so that `-DREMO_TSA=ON` (Clang) can prove every access
// to a REMO_GUARDED_BY field happens under its lock.
//
// Project rule (enforced by remo_lint's `raw-mutex` rule): code in src/
// uses these wrappers, never `std::mutex` / `std::lock_guard` /
// `std::condition_variable` directly — a raw mutex is invisible to the
// analysis, so a guarded field behind it is a silent hole in the proof.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace remo {

/// A `std::mutex` that is a TSA capability — the one sanctioned raw mutex
/// in src/; everything else goes through this wrapper. Lockable and
/// BasicLockable, so it composes with CondVar (which unlocks/relocks it
/// while waiting).
class REMO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() REMO_ACQUIRE() { mu_.lock(); }
  void unlock() REMO_RELEASE() { mu_.unlock(); }
  bool try_lock() REMO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  // remo-lint: allow(raw-mutex) the wrapped implementation mutex
  std::mutex mu_;
};

/// RAII lock: acquires on construction, releases on destruction, with
/// manual unlock()/lock() for the drop-the-lock-around-work pattern
/// (ThreadPool::worker_loop). Follows the scoped-capability example in
/// the Clang TSA docs so the analysis tracks the relock cycle exactly.
class REMO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) REMO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() REMO_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily drop the lock; must be balanced by lock() (or scope exit
  /// with the lock released is fine — the destructor checks).
  void unlock() REMO_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void lock() REMO_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable that waits on a remo::Mutex directly (the caller
/// holds it via MutexLock; wait() unlocks and relocks the same mutex).
/// Built on condition_variable_any, which accepts any BasicLockable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen; callers loop on their predicate (reading it
  /// under the lock, which is what REMO_REQUIRES documents and checks).
  void wait(Mutex& mu) REMO_REQUIRES(mu) { cv_.wait(mu); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // the one std waiter that can block on the annotated Mutex type itself:
  // remo-lint: allow(raw-mutex) condition_variable_any waits on remo::Mutex
  std::condition_variable_any cv_;
};

}  // namespace remo
