// Set algebra over sorted, duplicate-free vectors.
//
// REMO manipulates many small sets (attribute sets of a partition, node
// sets of a tree). Sorted vectors beat node-based containers for these
// sizes and make unions/intersections linear merges. Every function below
// requires its inputs to satisfy is_sorted_unique() and guarantees the same
// for its output.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace remo {

template <typename T>
bool is_sorted_unique(const std::vector<T>& v) {
  return std::adjacent_find(v.begin(), v.end(),
                            [](const T& a, const T& b) { return !(a < b); }) ==
         v.end();
}

/// Sort and deduplicate in place, turning an arbitrary vector into a set.
template <typename T>
void sort_unique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

template <typename T>
bool set_contains(const std::vector<T>& v, const T& x) {
  return std::binary_search(v.begin(), v.end(), x);
}

/// Insert x if absent; returns true if inserted.
template <typename T>
bool set_insert(std::vector<T>& v, const T& x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

/// Erase x if present; returns true if erased.
template <typename T>
bool set_erase(std::vector<T>& v, const T& x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || !(*it == x)) return false;
  v.erase(it);
  return true;
}

template <typename T>
std::vector<T> set_union(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

template <typename T>
std::vector<T> set_intersection(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

template <typename T>
std::vector<T> set_difference(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// |a ∩ b| without materializing the intersection.
template <typename T>
std::size_t intersection_size(const std::vector<T>& a, const std::vector<T>& b) {
  std::size_t n = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

template <typename T>
bool sets_intersect(const std::vector<T>& a, const std::vector<T>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

/// True iff a ⊆ b.
template <typename T>
bool is_subset(const std::vector<T>& a, const std::vector<T>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace remo
