// Small statistics helpers used by the simulator and the bench harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace remo {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance.
  double variance() const noexcept { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile over a sample (linear interpolation between ranks).
/// p in [0, 100]. Returns 0 for an empty sample.
double percentile(std::vector<double> sample, double p);

/// Arithmetic mean; 0 for empty input.
double mean_of(const std::vector<double>& v);

/// Jain's fairness index: (Σx)² / (n·Σx²); 1 = perfectly balanced.
/// Used to characterize load balance across monitoring nodes.
double jain_fairness(const std::vector<double>& loads);

}  // namespace remo
