#include "common/simd.h"

#include <cstdlib>
#include <cstring>

namespace remo::simd::detail {

namespace {
bool init_from_env() {
  const char* v = std::getenv("REMO_SIMD");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0);
}
}  // namespace

std::atomic<bool> g_enabled{init_from_env()};

}  // namespace remo::simd::detail
