// Minimal leveled logger.
//
// REMO libraries are quiet by default (benchmarks time the planner, so
// logging in hot paths must compile down to a level check). The level is a
// process-wide atomic; there is no per-module configuration on purpose —
// this is a research library, not a service.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace remo {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Receives every emitted (level-passing) log line. Called under the
/// emit lock, one message at a time — the sink itself need not be
/// thread-safe, but must not log re-entrantly.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Installs `sink` in place of the stderr default; an empty sink restores
/// it. Lets embedders (and the obs trace recorder's span mirroring) route
/// log lines and telemetry onto one output stream.
void set_log_sink(LogSink sink);

namespace detail {
void log_emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace remo

#define REMO_LOG(level)                                 \
  if (static_cast<int>(level) < static_cast<int>(::remo::log_level())) { \
  } else                                                \
    ::remo::detail::LogLine(level)

#define REMO_DEBUG() REMO_LOG(::remo::LogLevel::kDebug)
#define REMO_INFO() REMO_LOG(::remo::LogLevel::kInfo)
#define REMO_WARN() REMO_LOG(::remo::LogLevel::kWarn)
#define REMO_ERROR() REMO_LOG(::remo::LogLevel::kError)
