// Fixed-width table printer for the bench harnesses.
//
// Every figure-reproduction bench prints its series as an aligned text
// table (one row per sweep point, one column per scheme) so that
// bench_output.txt is directly comparable to the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace remo {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row. Subsequent add() calls fill its cells.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 2);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long long>(value)); }

  /// Render with aligned columns; includes a header underline.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Raw cells, for machine-readable re-serialization (bench telemetry).
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace remo
