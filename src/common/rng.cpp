#include "common/rng.h"

#include <cmath>
#include <unordered_set>

namespace remo {

double Rng::sqrt_impl(double x) noexcept { return std::sqrt(x); }
double Rng::log_impl(double x) noexcept { return std::log(x); }

std::vector<std::uint32_t> Rng::sample(std::uint32_t n, std::uint32_t k) {
  if (k > n) k = n;
  // For dense samples a partial Fisher–Yates over [0,n) is cheapest; for
  // sparse samples rejection over a hash set avoids materializing [0,n).
  if (k * 3 >= n) {
    std::vector<std::uint32_t> all(n);
    for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::uint32_t>(below(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<std::uint32_t> seen;
  std::vector<std::uint32_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const auto v = static_cast<std::uint32_t>(below(n));
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace remo
