// Clang Thread Safety Analysis (TSA) capability annotations — the
// compile-time half of the concurrency contract (DESIGN.md §16).
//
// REMO's determinism story (bit-identical plans under every optimization)
// rests on a small set of lock disciplines: the metrics registry's map is
// only touched under its mutex, the tree-build cache's memo tables are
// only read under theirs, the message bus's stats are a locked snapshot,
// and so on. Runtime tools (TSan, REMO_VALIDATE) can only catch a
// violation on an interleaving that actually happens in a test; these
// annotations move the whole bug class to compile time — Clang's
// -Wthread-safety pass proves, per translation unit, that every access to
// a REMO_GUARDED_BY field happens while its capability (mutex) is held.
//
// Vocabulary (mirrors the attribute names in the Clang TSA docs):
//   REMO_CAPABILITY(name)   a class whose instances are capabilities
//                           (remo::Mutex is the only one today)
//   REMO_SCOPED_CAPABILITY  an RAII object that acquires/releases one
//   REMO_GUARDED_BY(mu)     field only accessed while `mu` is held
//   REMO_PT_GUARDED_BY(mu)  pointer field whose *pointee* `mu` guards
//   REMO_REQUIRES(mu...)    function requires `mu` held on entry (and exit)
//   REMO_ACQUIRE(mu...)     function acquires `mu`; held on exit
//   REMO_RELEASE(mu...)     function releases `mu`; not held on exit
//   REMO_TRY_ACQUIRE(b, mu) acquires `mu` iff the function returns `b`
//   REMO_EXCLUDES(mu...)    caller must NOT hold `mu` (non-reentrancy)
//   REMO_ASSERT_CAPABILITY  runtime assertion that `mu` is held
//   REMO_RETURN_CAPABILITY  function returns a reference to `mu`
//   REMO_NO_TSA             opt a function body out of the analysis — use
//                           only with a comment saying why it is sound
//
// Every macro expands to nothing unless the compiler is Clang with the
// thread-safety attributes available, so GCC builds (the default local
// toolchain) are byte-for-byte unaffected. The `-DREMO_TSA=ON` CMake
// option turns the analysis into errors (-Werror=thread-safety); the CI
// `tsa` job builds the whole tree that way.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define REMO_TSA_ATTRIBUTE(x) __attribute__((x))
#endif
#endif
#ifndef REMO_TSA_ATTRIBUTE
#define REMO_TSA_ATTRIBUTE(x)  // not Clang (or too old): annotations vanish
#endif

#define REMO_CAPABILITY(x) REMO_TSA_ATTRIBUTE(capability(x))
#define REMO_SCOPED_CAPABILITY REMO_TSA_ATTRIBUTE(scoped_lockable)

#define REMO_GUARDED_BY(x) REMO_TSA_ATTRIBUTE(guarded_by(x))
#define REMO_PT_GUARDED_BY(x) REMO_TSA_ATTRIBUTE(pt_guarded_by(x))

#define REMO_REQUIRES(...) \
  REMO_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REMO_REQUIRES_SHARED(...) \
  REMO_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define REMO_ACQUIRE(...) REMO_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define REMO_ACQUIRE_SHARED(...) \
  REMO_TSA_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define REMO_RELEASE(...) REMO_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define REMO_RELEASE_SHARED(...) \
  REMO_TSA_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define REMO_TRY_ACQUIRE(...) \
  REMO_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define REMO_EXCLUDES(...) REMO_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define REMO_ASSERT_CAPABILITY(x) REMO_TSA_ATTRIBUTE(assert_capability(x))
#define REMO_RETURN_CAPABILITY(x) REMO_TSA_ATTRIBUTE(lock_returned(x))

#define REMO_NO_TSA REMO_TSA_ATTRIBUTE(no_thread_safety_analysis)
