#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace remo {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(sample.begin(), sample.end());
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double jain_fairness(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  double sum = 0.0;
  double sq = 0.0;
  for (double x : loads) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(loads.size()) * sq);
}

}  // namespace remo
