#include "common/logging.h"

#include <cstdio>

#include "common/annotations.h"
#include "common/mutex.h"

namespace remo {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
Mutex g_emit_mutex;
/// Empty = the stderr default.
LogSink g_sink REMO_GUARDED_BY(g_emit_mutex);

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) {
  MutexLock lock(g_emit_mutex);
  g_sink = std::move(sink);
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  MutexLock lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[remo %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace remo
