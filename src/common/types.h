// Core identifier types and small value types shared by every REMO module.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace remo {

/// Identifies a monitoring node. Node 0 is reserved for the central data
/// collector (the root of every monitoring tree).
using NodeId = std::uint32_t;

/// Identifies an attribute *type* (e.g. "cpu_utilization"). Attributes at
/// different nodes with the same id are considered the same type (Sec. 2.3).
using AttrId = std::uint32_t;

/// Identifies a monitoring task submitted to the task manager.
using TaskId = std::uint32_t;

/// Identifies a monitoring tree within a topology.
using TreeId = std::uint32_t;

/// Resource capacity / consumption, in abstract cost units per unit time
/// (the paper uses CPU as the primary resource, Sec. 2.3).
using Capacity = double;

/// The reserved id of the central data collector node.
inline constexpr NodeId kCollectorId = 0;

/// Sentinel for "no node" (e.g. the parent of a tree root).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no tree".
inline constexpr TreeId kNoTree = std::numeric_limits<TreeId>::max();

/// A single (node, attribute) pair: the unit of monitoring work after the
/// task manager deduplicates overlapping tasks (Definition 1).
struct NodeAttrPair {
  NodeId node = kNoNode;
  AttrId attr = 0;

  friend constexpr bool operator==(const NodeAttrPair&,
                                   const NodeAttrPair&) = default;
  friend constexpr auto operator<=>(const NodeAttrPair&,
                                    const NodeAttrPair&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const NodeAttrPair& p) {
  return os << "(n" << p.node << ",a" << p.attr << ")";
}

}  // namespace remo

template <>
struct std::hash<remo::NodeAttrPair> {
  std::size_t operator()(const remo::NodeAttrPair& p) const noexcept {
    // Splitmix-style combine: both fields are 32-bit so pack then mix.
    std::uint64_t v =
        (static_cast<std::uint64_t>(p.node) << 32) | static_cast<std::uint64_t>(p.attr);
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    return static_cast<std::size_t>(v);
  }
};
