// The data collector's repository (Fig. 1): bounded time-series storage
// for delivered attribute values, with point, range, and window-aggregate
// queries. This is what "provides monitoring data access to users and
// high-level applications" on top of the delivery overlay.
//
// One fixed-capacity ring per node-attribute pair: O(1) record, O(window)
// range scans, memory bounded by pairs × capacity regardless of runtime.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace remo {

struct Sample {
  std::uint64_t epoch = 0;
  double value = 0.0;

  friend constexpr bool operator==(const Sample&, const Sample&) = default;
};

struct WindowAggregate {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;

  double avg() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

class TimeSeriesStore {
 public:
  /// `ring_capacity`: samples retained per pair (oldest evicted first).
  explicit TimeSeriesStore(std::size_t ring_capacity = 256);

  /// Records a delivered value. Epochs are expected non-decreasing per
  /// pair; a sample for an epoch already at the head overwrites it (a
  /// replica path may deliver the same observation twice).
  void record(NodeAttrPair pair, std::uint64_t epoch, double value);

  /// Most recent sample for the pair.
  std::optional<Sample> latest(NodeAttrPair pair) const;

  /// Samples with epoch in [from, to], oldest first (within retention).
  std::vector<Sample> range(NodeAttrPair pair, std::uint64_t from,
                            std::uint64_t to) const;

  /// min/max/sum/count over the pair's samples in [from, to].
  WindowAggregate window(NodeAttrPair pair, std::uint64_t from,
                         std::uint64_t to) const;

  /// Cross-node aggregate of the *latest* value of `attr` on every node,
  /// ignoring samples older than `min_epoch` (stale nodes drop out) — the
  /// fleet snapshot behind dashboards and fleet-scope alerts.
  WindowAggregate snapshot(AttrId attr, std::uint64_t min_epoch = 0) const;

  /// Epochs since the pair's last delivery (nullopt if never delivered).
  std::optional<std::uint64_t> staleness(NodeAttrPair pair,
                                         std::uint64_t now) const;

  std::size_t num_pairs() const noexcept { return rings_.size(); }
  /// Lifetime count of recorded samples (evicted ones included; duplicate
  /// same-epoch overwrites excluded).
  std::size_t total_samples() const noexcept { return total_samples_; }
  std::size_t ring_capacity() const noexcept { return capacity_; }

  /// Drops every sample (retains nothing; pairs forget their history).
  void clear();

 private:
  struct Ring {
    std::vector<Sample> buf;  // grows to capacity_, then wraps
    std::size_t next = 0;     // overwrite index once full
    bool full = false;
  };

  const Sample* newest(const Ring& ring) const;

  std::size_t capacity_;
  std::unordered_map<NodeAttrPair, Ring> rings_;
  std::size_t total_samples_ = 0;
};

}  // namespace remo
