#include "collector/alerts.h"

namespace remo {

const char* to_string(AlertOp op) noexcept {
  switch (op) {
    case AlertOp::kGreater:
      return ">";
    case AlertOp::kGreaterEq:
      return ">=";
    case AlertOp::kLess:
      return "<";
    case AlertOp::kLessEq:
      return "<=";
  }
  return "?";
}

const char* to_string(AlertScope scope) noexcept {
  switch (scope) {
    case AlertScope::kPerNode:
      return "PER-NODE";
    case AlertScope::kFleetAvg:
      return "FLEET-AVG";
    case AlertScope::kFleetMax:
      return "FLEET-MAX";
    case AlertScope::kFleetMin:
      return "FLEET-MIN";
  }
  return "?";
}

RuleId AlertEngine::add_rule(AlertRule rule, Callback callback) {
  const RuleId id = next_id_++;
  if (rule.min_consecutive == 0) rule.min_consecutive = 1;
  rules_.emplace(id, RuleState{rule, std::move(callback), {}});
  return id;
}

bool AlertEngine::remove_rule(RuleId id) { return rules_.erase(id) > 0; }

bool AlertEngine::breaches(const AlertRule& rule, double value) {
  switch (rule.op) {
    case AlertOp::kGreater:
      return value > rule.threshold;
    case AlertOp::kGreaterEq:
      return value >= rule.threshold;
    case AlertOp::kLess:
      return value < rule.threshold;
    case AlertOp::kLessEq:
      return value <= rule.threshold;
  }
  return false;
}

void AlertEngine::fire(RuleState& state, RuleId id, NodeId node,
                       std::uint64_t epoch, double value) {
  ++fired_;
  if (state.callback) state.callback(Alert{id, node, epoch, value});
}

void AlertEngine::on_value(NodeAttrPair pair, std::uint64_t epoch, double value) {
  for (auto& [id, state] : rules_) {
    const AlertRule& rule = state.rule;
    if (rule.scope != AlertScope::kPerNode || rule.attr != pair.attr) continue;
    auto& streak = state.streak[pair.node];
    if (breaches(rule, value)) {
      if (++streak == rule.min_consecutive)
        fire(state, id, pair.node, epoch, value);
      // Re-arm only after the condition clears: clamp so a persistent
      // breach produces one alert (and the counter cannot wrap).
      if (streak > rule.min_consecutive) streak = rule.min_consecutive + 1;
    } else {
      streak = 0;
    }
  }
}

void AlertEngine::end_epoch(std::uint64_t epoch) {
  if (store_ == nullptr) return;
  for (auto& [id, state] : rules_) {
    const AlertRule& rule = state.rule;
    if (rule.scope == AlertScope::kPerNode) continue;
    const std::uint64_t min_epoch =
        epoch >= rule.max_staleness ? epoch - rule.max_staleness : 0;
    const WindowAggregate snap = store_->snapshot(rule.attr, min_epoch);
    if (snap.count == 0) {
      state.streak[kNoNode] = 0;
      continue;
    }
    double observed = 0.0;
    switch (rule.scope) {
      case AlertScope::kFleetAvg:
        observed = snap.avg();
        break;
      case AlertScope::kFleetMax:
        observed = snap.max;
        break;
      case AlertScope::kFleetMin:
        observed = snap.min;
        break;
      case AlertScope::kPerNode:
        continue;  // unreachable
    }
    auto& streak = state.streak[kNoNode];
    if (breaches(rule, observed)) {
      if (++streak == rule.min_consecutive)
        fire(state, id, kNoNode, epoch, observed);
      if (streak > rule.min_consecutive) streak = rule.min_consecutive + 1;
    } else {
      streak = 0;
    }
  }
}

}  // namespace remo
