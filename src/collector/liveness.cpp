#include "collector/liveness.h"

#include <algorithm>

#include "tree/monitoring_tree.h"

namespace remo {

void LivenessTracker::sync(const Topology& topology, std::uint64_t epoch) {
  std::unordered_map<NodeId, State> next;
  for (const auto& entry : topology.entries()) {
    const auto& specs = entry.tree.attr_specs();
    for (NodeId n : entry.tree.members()) {
      // remo-lint: allow(span-store) read-only scan of a const topology; no tree mutation while the view lives
      const auto local = entry.tree.local_counts(n);
      std::uint64_t interval = 0;
      for (std::size_t m = 0; m < specs.size(); ++m) {
        if (local[m] == 0) continue;
        const std::uint64_t p = send_period(specs[m].weight);
        interval = interval == 0 ? p : std::min(interval, p);
      }
      if (interval == 0) continue;  // relay-only member: not observable here
      const std::uint64_t depth = entry.tree.depth(n);
      auto [it, fresh] = next.try_emplace(n);
      State& s = it->second;
      if (fresh) {
        // Carry history over from the previous deployment; a brand-new
        // node starts its deadline clock now.
        auto prev = nodes_.find(n);
        if (prev != nodes_.end()) {
          s.last_seen = prev->second.last_seen;
          s.down = prev->second.down;
        } else {
          s.last_seen = epoch;
        }
        s.interval = interval;
        s.grace = depth;
      } else {
        // The node contributes to several trees: the tightest expectation
        // wins on interval, the slowest path on grace.
        s.interval = std::min(s.interval, interval);
        s.grace = std::max(s.grace, depth);
      }
    }
  }
  // Suspected nodes stay remembered even when they leave the deployment
  // (repair may have dropped their branch entirely): forgetting them here
  // would let the next replan re-admit a dead node as a healthy relay,
  // which the deadline check then re-detects a few epochs later — an
  // endless detect/replan flap. Down state only clears on a delivery.
  for (const auto& [node, s] : nodes_)
    if (s.down) next.try_emplace(node, s);
  nodes_ = std::move(next);
  // Forget queued recoveries for nodes that left the deployment.
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [this](const LivenessEvent& e) {
                                  return nodes_.find(e.node) == nodes_.end();
                                }),
                 pending_.end());
}

void LivenessTracker::restart_deadlines(std::uint64_t epoch) {
  for (auto& [node, s] : nodes_)
    if (!s.down) s.last_seen = std::max(s.last_seen, epoch);
}

void LivenessTracker::on_delivery(NodeAttrPair pair, std::uint64_t epoch) {
  auto it = nodes_.find(pair.node);
  if (it == nodes_.end()) return;
  State& s = it->second;
  if (s.down) {
    s.down = false;
    LivenessEvent ev;
    ev.node = pair.node;
    ev.epoch = epoch;
    ev.down = false;
    ev.lag = epoch > s.last_seen + s.interval ? epoch - s.last_seen - s.interval
                                              : 0;
    pending_.push_back(ev);
  }
  s.last_seen = std::max(s.last_seen, epoch);
}

std::vector<LivenessEvent> LivenessTracker::end_epoch(std::uint64_t epoch) {
  std::vector<LivenessEvent> events = std::move(pending_);
  pending_.clear();
  std::vector<LivenessEvent> detects;
  for (auto& [node, s] : nodes_) {
    if (s.down) continue;
    // Suspect once the silence exceeds the pipeline grace plus
    // `missed_deadlines` whole send periods.
    const std::uint64_t deadline =
        s.last_seen + s.grace + s.interval * config_.missed_deadlines;
    if (epoch <= deadline) continue;
    s.down = true;
    LivenessEvent ev;
    ev.node = node;
    ev.epoch = epoch;
    ev.down = true;
    ev.lag = epoch - s.last_seen - s.interval;
    detects.push_back(ev);
  }
  std::sort(detects.begin(), detects.end(),
            [](const LivenessEvent& a, const LivenessEvent& b) {
              return a.node < b.node;
            });
  events.insert(events.end(), detects.begin(), detects.end());
  return events;
}

bool LivenessTracker::is_down(NodeId node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.down;
}

std::vector<NodeId> LivenessTracker::suspected() const {
  std::vector<NodeId> out;
  for (const auto& [node, s] : nodes_)
    if (s.down) out.push_back(node);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace remo
