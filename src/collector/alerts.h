// The result processor's warning engine (Fig. 1: "executes the concrete
// monitoring operations including collecting and aggregating attribute
// values, triggering warnings"). Rules are evaluated against delivered
// values as they arrive (per-node scope) or against fleet snapshots at
// epoch boundaries (fleet scopes), with consecutive-breach debouncing so a
// single spike does not page anyone.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "collector/time_series.h"
#include "common/types.h"

namespace remo {

using RuleId = std::uint32_t;

enum class AlertOp : std::uint8_t { kGreater, kGreaterEq, kLess, kLessEq };
enum class AlertScope : std::uint8_t {
  kPerNode,   ///< breach when any single node's delivered value trips
  kFleetAvg,  ///< breach on the mean of the latest values across nodes
  kFleetMax,  ///< breach on the max of the latest values across nodes
  kFleetMin,  ///< breach on the min of the latest values across nodes
};

const char* to_string(AlertOp op) noexcept;
const char* to_string(AlertScope scope) noexcept;

struct AlertRule {
  AttrId attr = 0;
  AlertOp op = AlertOp::kGreater;
  double threshold = 0.0;
  AlertScope scope = AlertScope::kPerNode;
  /// Fire only after this many consecutive breaching observations
  /// (per node for kPerNode; per epoch for fleet scopes).
  std::uint32_t min_consecutive = 1;
  /// Fleet scopes: ignore nodes whose latest sample is older than
  /// `now - max_staleness` (a dead node must not pin the fleet minimum).
  std::uint64_t max_staleness = 10;
};

struct Alert {
  RuleId rule = 0;
  /// Breaching node for kPerNode; kNoNode for fleet scopes.
  NodeId node = kNoNode;
  std::uint64_t epoch = 0;
  /// The observed value that tripped the rule.
  double value = 0.0;
};

class AlertEngine {
 public:
  using Callback = std::function<void(const Alert&)>;

  /// The engine reads fleet snapshots from `store` (not owned); per-node
  /// rules are evaluated straight off on_value() deliveries.
  explicit AlertEngine(const TimeSeriesStore* store = nullptr) : store_(store) {}

  RuleId add_rule(AlertRule rule, Callback callback);
  bool remove_rule(RuleId id);
  std::size_t num_rules() const noexcept { return rules_.size(); }

  /// Feed one delivered value (call alongside TimeSeriesStore::record).
  void on_value(NodeAttrPair pair, std::uint64_t epoch, double value);

  /// Evaluate fleet-scope rules at an epoch boundary (needs `store`).
  void end_epoch(std::uint64_t epoch);

  std::size_t alerts_fired() const noexcept { return fired_; }

 private:
  struct RuleState {
    AlertRule rule;
    Callback callback;
    /// Consecutive-breach counters: per node for kPerNode (keyed by node),
    /// single entry keyed by kNoNode for fleet scopes.
    std::unordered_map<NodeId, std::uint32_t> streak;
  };

  static bool breaches(const AlertRule& rule, double value);
  void fire(RuleState& state, RuleId id, NodeId node, std::uint64_t epoch,
            double value);

  const TimeSeriesStore* store_;
  std::map<RuleId, RuleState> rules_;
  RuleId next_id_ = 1;
  std::size_t fired_ = 0;
};

}  // namespace remo
