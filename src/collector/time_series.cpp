#include "collector/time_series.h"

#include <algorithm>
#include <stdexcept>

namespace remo {

TimeSeriesStore::TimeSeriesStore(std::size_t ring_capacity)
    : capacity_(ring_capacity) {
  if (capacity_ == 0) throw std::invalid_argument("ring capacity must be > 0");
}

const Sample* TimeSeriesStore::newest(const Ring& ring) const {
  if (ring.buf.empty()) return nullptr;
  if (!ring.full) return &ring.buf.back();
  const std::size_t idx = (ring.next + capacity_ - 1) % capacity_;
  return &ring.buf[idx];
}

void TimeSeriesStore::record(NodeAttrPair pair, std::uint64_t epoch, double value) {
  Ring& ring = rings_[pair];
  if (const Sample* head = newest(ring); head != nullptr && head->epoch == epoch) {
    // Duplicate delivery for the same epoch (e.g. a replica path): the
    // newest observation wins, no new slot.
    const std::size_t idx =
        ring.full ? (ring.next + capacity_ - 1) % capacity_ : ring.buf.size() - 1;
    ring.buf[idx].value = value;
    return;
  }
  if (!ring.full) {
    ring.buf.push_back({epoch, value});
    if (ring.buf.size() == capacity_) {
      ring.full = true;
      ring.next = 0;
    }
  } else {
    ring.buf[ring.next] = {epoch, value};
    ring.next = (ring.next + 1) % capacity_;
  }
  ++total_samples_;
}

std::optional<Sample> TimeSeriesStore::latest(NodeAttrPair pair) const {
  auto it = rings_.find(pair);
  if (it == rings_.end()) return std::nullopt;
  const Sample* head = newest(it->second);
  return head == nullptr ? std::nullopt : std::optional<Sample>(*head);
}

std::vector<Sample> TimeSeriesStore::range(NodeAttrPair pair, std::uint64_t from,
                                           std::uint64_t to) const {
  std::vector<Sample> out;
  auto it = rings_.find(pair);
  if (it == rings_.end()) return out;
  const Ring& ring = it->second;
  const std::size_t n = ring.buf.size();
  const std::size_t start = ring.full ? ring.next : 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = ring.buf[(start + i) % n];
    if (s.epoch >= from && s.epoch <= to) out.push_back(s);
  }
  return out;
}

WindowAggregate TimeSeriesStore::window(NodeAttrPair pair, std::uint64_t from,
                                        std::uint64_t to) const {
  WindowAggregate agg;
  for (const Sample& s : range(pair, from, to)) {
    if (agg.count == 0) {
      agg.min = agg.max = s.value;
    } else {
      agg.min = std::min(agg.min, s.value);
      agg.max = std::max(agg.max, s.value);
    }
    agg.sum += s.value;
    ++agg.count;
  }
  return agg;
}

WindowAggregate TimeSeriesStore::snapshot(AttrId attr, std::uint64_t min_epoch) const {
  WindowAggregate agg;
  for (const auto& [pair, ring] : rings_) {
    if (pair.attr != attr) continue;
    const Sample* head = newest(ring);
    if (head == nullptr || head->epoch < min_epoch) continue;
    if (agg.count == 0) {
      agg.min = agg.max = head->value;
    } else {
      agg.min = std::min(agg.min, head->value);
      agg.max = std::max(agg.max, head->value);
    }
    agg.sum += head->value;
    ++agg.count;
  }
  return agg;
}

std::optional<std::uint64_t> TimeSeriesStore::staleness(NodeAttrPair pair,
                                                        std::uint64_t now) const {
  const auto head = latest(pair);
  if (!head.has_value()) return std::nullopt;
  return now >= head->epoch ? now - head->epoch : 0;
}

void TimeSeriesStore::clear() {
  rings_.clear();
  total_samples_ = 0;
}

}  // namespace remo
