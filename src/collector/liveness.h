// Collector-side failure detection (the liveness half of the detect →
// repair → replan loop, see DESIGN.md). The collector is the only vantage
// point a deployment actually has: it never hears "node X died", it only
// stops receiving X's values. This tracker turns delivery gaps into
// explicit up/down state: every node that contributes local values to a
// deployed tree is expected to deliver at least every `interval` epochs
// (its most frequent attribute's send period, Sec. 6.3) plus a pipeline
// grace of `depth` epochs (a value observed at depth d needs d hops); a
// node that misses `missed_deadlines` consecutive deadlines is suspected
// down, and any later delivery from it recovers it.
//
// A dead relay silences its whole subtree, so descendants of a failed node
// are suspected too — by design: the repair pass (adapt/repair.h) re-homes
// every suspected branch, and falsely-suspected descendants recover as
// soon as their values flow again.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "planner/topology.h"

namespace remo {

struct LivenessConfig {
  /// Consecutive missed delivery deadlines before a node is suspected
  /// down (the suspicion threshold; deadline spacing = send period).
  std::uint64_t missed_deadlines = 3;
};

/// A detection edge: a node transitioned up -> suspected-down or back.
struct LivenessEvent {
  NodeId node = kNoNode;
  /// Epoch the event was emitted.
  std::uint64_t epoch = 0;
  /// true: suspected down; false: recovered (a delivery arrived).
  bool down = false;
  /// Epochs since the node's first missed deadline — the time-to-detect
  /// for down events, the outage's observable length for recoveries.
  std::uint64_t lag = 0;
};

class LivenessTracker {
 public:
  explicit LivenessTracker(LivenessConfig config = {}) : config_(config) {}

  /// (Re)derives per-node expectations from a deployed topology: expected
  /// delivery interval = min send period over the node's local attributes,
  /// pipeline grace = the node's max tree depth. Call after every
  /// (re)deployment. Delivery history and down state survive the re-sync;
  /// up nodes that no longer contribute local values are forgotten, nodes
  /// appearing for the first time start their deadline clock at `epoch`.
  /// Suspected nodes are remembered even when absent from the topology
  /// (repair may have dropped them): only a delivery clears down state.
  void sync(const Topology& topology, std::uint64_t epoch);

  /// Restart every up node's deadline clock at `epoch`. Call after a
  /// (re)deployment: redeploying tears down links and drops in-flight
  /// relay buffers, so a deep node legitimately needs a fresh window of
  /// `grace` epochs before its next value can arrive — without the reset,
  /// every redeploy triggers false suspicions on deep members and the
  /// loop thrashes (repair → redeploy → starve → repair ...). Nodes
  /// already suspected keep their state: their recovery is driven by
  /// deliveries, not deadlines.
  void restart_deadlines(std::uint64_t epoch);

  /// Feed one collector arrival (call alongside TimeSeriesStore::record).
  /// A delivery from a suspected node queues a recovery event for the next
  /// end_epoch().
  void on_delivery(NodeAttrPair pair, std::uint64_t epoch);

  /// Deadline check at an epoch boundary; returns the detect/recover
  /// events that fired this epoch (recoveries first, then detections by
  /// ascending node id).
  std::vector<LivenessEvent> end_epoch(std::uint64_t epoch);

  bool is_down(NodeId node) const;
  /// Currently suspected-down nodes, ascending.
  std::vector<NodeId> suspected() const;
  /// Nodes under observation (members contributing local values).
  std::size_t tracked() const noexcept { return nodes_.size(); }

 private:
  struct State {
    std::uint64_t interval = 1;  ///< expected epochs between deliveries
    std::uint64_t grace = 1;     ///< pipeline depth (hops to the collector)
    std::uint64_t last_seen = 0;
    bool down = false;
  };

  LivenessConfig config_;
  std::unordered_map<NodeId, State> nodes_;
  std::vector<LivenessEvent> pending_;  ///< recoveries queued by on_delivery
};

}  // namespace remo
