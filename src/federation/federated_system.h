// The federation facade (DESIGN.md §12): K shard-local monitoring cores
// behind the MonitoringSystem one-stop API. Callers keep speaking global
// node ids and user-level task ids; the facade
//   - routes every task submission through the ShardRouter, splitting
//     cross-shard tasks into per-shard subtasks (shard-scoped task ids,
//     recorded in routing metadata so removals/modifies follow),
//   - runs one full MonitoringSystem per shard (planner + task manager +
//     detect→repair→replan loop, all scoped to that shard's node subset),
//   - merges per-shard Status / RepairReport / collected-pair streams at
//     the root-of-roots tier (aggregator.h), with pair-count accounting
//     proving routing loses nothing (check_invariants, REMO_VALIDATE),
//   - republishes per-shard metrics under `planner.shard<k>.*`-style
//     labels next to `federation.*` cross-shard traffic counters.
//
// Task churn stays shard-local: a mutation dirties only the shards its
// node set routes to, and those shards ride the core's delta fast path
// (DESIGN.md §13) — untouched shards never replan, observable as flat
// `planner.shard<k>.delta.replans` counters after publish_metrics().
//
// K = 1 is the compatibility configuration: a single shard with identity
// id maps, bit-identical collected pairs to the unsharded
// MonitoringSystem (property-tested). This is what lets the singleton be
// "one shard among K" without breaking any existing caller.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/monitoring_system.h"
#include "federation/shard_router.h"
#include "obs/metrics.h"

namespace remo::federation {

struct FederationOptions {
  /// Number of shard-local cores; clamped to at least 1.
  std::size_t num_shards = 1;
  /// Template options applied to every shard core. The facade overrides
  /// the metric registries (each shard publishes into a private registry
  /// so per-shard series stay separable) and the shard identity; the
  /// recovery callbacks are wrapped to report global node ids.
  MonitoringSystemOptions shard;
  /// Capacity of each shard's own collector. 0 (default) inherits the
  /// global collector's capacity — every shard root is provisioned like
  /// the old singleton root, which is the federation's scaling lever.
  Capacity shard_collector_capacity = 0.0;
  /// Registry the facade publishes `federation.*` counters and the
  /// labeled per-shard series into (publish_metrics()). Null = the
  /// process-global registry.
  obs::Registry* metrics = nullptr;
};

// Thread model (DESIGN.md §16): the facade itself is single-threaded —
// callers serialize task/epoch calls exactly as they would against one
// core. The only state shared with other threads is the per-shard metric
// registries (`registries_`): shard cores publish into them while an
// exporter thread may read, and that traffic is safe because
// obs::Registry's map is guarded by an annotated remo::Mutex and the
// returned metric handles are lock-free atomics. No mutex lives at this
// layer, so there is nothing here for the thread-safety analysis to
// check — by construction, not by waiver.
class FederatedMonitoringSystem {
 public:
  explicit FederatedMonitoringSystem(SystemModel global,
                                     FederationOptions options = {});

  // Shard cores hold planner references into their owned SystemModels and
  // the facade's recovery wrappers capture `this`.
  FederatedMonitoringSystem(const FederatedMonitoringSystem&) = delete;
  FederatedMonitoringSystem& operator=(const FederatedMonitoringSystem&) = delete;

  // ---- task management (global node ids, user-level task ids) ----------
  TaskId add_task(MonitoringTask task);
  bool remove_task(TaskId id);
  bool modify_task(MonitoringTask task);
  std::size_t num_tasks() const noexcept { return routes_.size(); }

  // ---- root-of-roots aggregation ----------------------------------------
  using Status = MonitoringSystem::Status;
  /// Merged per-shard status; `tasks` counts user-facing tasks (a
  /// cross-shard task is one task, not one per shard it spans).
  Status status(double now = 0.0);
  /// Per-shard statuses, by shard index (each triggers that shard's lazy
  /// replan).
  std::vector<Status> shard_statuses(double now = 0.0);
  /// Merged collected-pair stream in global ids, sorted by (node, attr).
  std::vector<NodeAttrPair> collected_pairs(double now = 0.0);
  /// Merged lifetime repair counters across shards.
  RepairReport repair_report() const;

  /// Force a full from-scratch replan on every shard.
  void replan(double now = 0.0);

  /// K=1 compatibility accessor for callers that embed the facade where a
  /// MonitoringSystem used to sit; aborts when the federation has more
  /// than one shard (a federation has no single forest — use
  /// shard(k).topology()).
  const Topology& topology(double now = 0.0);

  // ---- failure recovery (global node ids) -------------------------------
  /// Routes one collector arrival to the owning shard's liveness tracker.
  void on_delivery(NodeAttrPair pair, std::uint64_t epoch);
  /// Runs every shard's detect → repair → replan step; true when any
  /// shard's topology changed. Replans stay shard-local: an outage in one
  /// shard never triggers planning work in another.
  bool end_epoch(std::uint64_t epoch);

  // ---- shard access ------------------------------------------------------
  std::size_t num_shards() const noexcept { return shards_.size(); }
  MonitoringSystem& shard(std::size_t k) { return *shards_.at(k); }
  const MonitoringSystem& shard(std::size_t k) const { return *shards_.at(k); }
  const ShardRouter& router() const noexcept { return router_; }
  const SystemModel& system() const noexcept { return system_; }

  // ---- cross-shard traffic accounting ------------------------------------
  struct RoutingStats {
    std::size_t tasks_submitted = 0;     ///< add_task calls
    std::size_t single_shard_tasks = 0;  ///< node set confined to one shard
    std::size_t cross_shard_tasks = 0;   ///< node set spans >1 shard
    std::size_t subtasks_routed = 0;     ///< per-shard subtasks ever created
    std::size_t subtasks_active = 0;     ///< currently deployed subtasks
    std::size_t routed_node_refs = 0;    ///< task-node memberships routed
  };
  const RoutingStats& routing() const noexcept { return routing_; }

  /// Publishes the federation counters plus every shard's private
  /// registry (labeled `<component>.shard<k>.*`) into `options.metrics`
  /// (or the global registry). Call before snapshotting for telemetry.
  void publish_metrics();

  // ---- introspection -----------------------------------------------------
  /// JSON envelope: {"federation": {...routing...}, "shards": [<shard
  /// export_json>, ...]}.
  std::string export_json(double now = 0.0);
  /// K=1: the shard's digraph verbatim; K>1: the shard digraphs
  /// concatenated with `// shard k` separators (Graphviz reads multiple
  /// graphs per file).
  std::string export_dot(double now = 0.0);

  /// Deep invariant hook (REMO_VALIDATE): for every routed task, the
  /// per-shard subtasks partition the task's in-range nodes — summed
  /// per-shard pair counts equal the task's global pair count, proving
  /// the split loses and duplicates nothing. Runs after every mutating
  /// call when validation is enabled; no-op otherwise.
  void check_invariants() const;

  // ---- snapshot/restore + memoization (service/snapshot.h, DESIGN.md §14)
  struct Sub {
    std::uint32_t shard = 0;
    TaskId local_id = 0;          ///< shard-local task id
    std::size_t node_count = 0;   ///< unique in-range nodes routed there
  };
  struct Route {
    MonitoringTask user;  ///< as submitted (global ids), id = global id
    std::vector<Sub> subtasks;  ///< live subtasks, ascending by shard
  };
  /// The routing table a snapshot serializes: every live task (global
  /// ids) with its per-shard subtask placement.
  const std::map<TaskId, Route>& routes() const noexcept { return routes_; }
  TaskId next_task_id() const noexcept { return next_id_; }
  /// Monotone state-change counter spanning the routing table and every
  /// shard core — readers (status() here, the service daemon's
  /// collected-pairs cache) memoize merged views on it.
  std::uint64_t generation() const noexcept;
  /// Replaces the routing metadata from a snapshot. The shard cores are
  /// restored separately (shard(k).restore_*) — this call only rebinds the
  /// facade's global→shard bookkeeping to them, then re-checks the pair
  /// conservation invariant under REMO_VALIDATE.
  void restore_routes(std::map<TaskId, Route> routes, TaskId next_id,
                      RoutingStats routing);

 private:
  /// Pairs task `t` requests against the global universe (unique in-range
  /// nodes × unique attributes) — the accounting unit for routing
  /// conservation.
  std::size_t global_pair_count(const MonitoringTask& t) const;

  SystemModel system_;
  FederationOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<obs::Registry>> registries_;
  std::vector<std::unique_ptr<MonitoringSystem>> shards_;
  std::map<TaskId, Route> routes_;
  TaskId next_id_ = 1;
  RoutingStats routing_;
  /// Routing-table half of generation() (shard cores carry their own).
  std::uint64_t routes_generation_ = 0;
  /// status() memo: the Aggregator merge is recomputed only when
  /// generation() moved.
  std::optional<Status> status_cache_;
  std::uint64_t status_generation_ = 0;
};

}  // namespace remo::federation
