#include "federation/shard_router.h"

#include <algorithm>

#include "common/check.h"
#include "common/sorted_vector.h"

namespace remo::federation {

ShardRouter::ShardRouter(std::size_t num_nodes, std::size_t num_shards)
    : num_nodes_(num_nodes), num_shards_(std::max<std::size_t>(1, num_shards)) {}

std::uint32_t ShardRouter::shard_of(NodeId global) const {
  REMO_ASSERT(global != kCollectorId, "the collector has no owning shard");
  REMO_ASSERT(global <= num_nodes_, "node n", global, " outside the ",
              num_nodes_, "-node universe");
  return static_cast<std::uint32_t>((global - 1) % num_shards_);
}

NodeId ShardRouter::to_local(NodeId global) const noexcept {
  if (global == kCollectorId) return kCollectorId;
  return static_cast<NodeId>(1 + (global - 1) / num_shards_);
}

NodeId ShardRouter::to_global(std::uint32_t shard, NodeId local) const noexcept {
  if (local == kCollectorId) return kCollectorId;
  return static_cast<NodeId>(1 + (static_cast<std::size_t>(local) - 1) * num_shards_ +
                             shard);
}

std::size_t ShardRouter::shard_size(std::uint32_t shard) const {
  REMO_ASSERT(shard < num_shards_, "shard ", shard, " >= ", num_shards_);
  return num_nodes_ / num_shards_ + (shard < num_nodes_ % num_shards_ ? 1 : 0);
}

std::vector<NodeId> ShardRouter::shard_nodes(std::uint32_t shard) const {
  std::vector<NodeId> out;
  out.reserve(shard_size(shard));
  for (NodeId g = static_cast<NodeId>(shard + 1); g <= num_nodes_;
       g += static_cast<NodeId>(num_shards_))
    out.push_back(g);
  return out;
}

SystemModel ShardRouter::shard_system(const SystemModel& global, std::uint32_t shard,
                                      Capacity collector_capacity) const {
  REMO_ASSERT(global.num_nodes() == num_nodes_, "router covers ", num_nodes_,
              " nodes but the system model has ", global.num_nodes());
  SystemModel local(shard_size(shard), 0.0, global.cost());
  local.set_collector_capacity(collector_capacity > 0.0
                                   ? collector_capacity
                                   : global.capacity(kCollectorId));
  for (NodeId g : shard_nodes(shard)) {
    const NodeId l = to_local(g);
    local.set_capacity(l, global.capacity(g));
    local.set_observable(l, global.observable(g));
  }
  return local;
}

std::vector<ShardRouter::RoutedSubtask> ShardRouter::route(
    const MonitoringTask& task) const {
  if (num_shards_ == 1) {
    // Fast path and the K=1 compatibility contract: the singleton shard
    // sees the submission byte-for-byte as the unsharded system would.
    RoutedSubtask sub{0, task};
    sub.task.origin_id = task.id;
    sub.task.home_shard = 0;
    return {std::move(sub)};
  }

  std::vector<NodeId> nodes = task.nodes;
  sort_unique(nodes);

  // Bucket the in-range nodes per shard, in ascending global (== local)
  // order. A flat per-shard vector keeps this allocation-light and the
  // output ordering deterministic.
  std::vector<std::vector<NodeId>> by_shard(num_shards_);
  for (NodeId g : nodes) {
    if (g == kCollectorId || g > num_nodes_) continue;
    by_shard[shard_of(g)].push_back(to_local(g));
  }

  std::vector<RoutedSubtask> out;
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    if (by_shard[s].empty()) continue;
    RoutedSubtask sub;
    sub.shard = s;
    sub.task = task;
    sub.task.origin_id = task.id;
    sub.task.home_shard = s;
    sub.task.nodes = std::move(by_shard[s]);
    // DSDP identical-value groups are membership lists too: keep each
    // group's members owned by this shard (local ids), drop emptied groups.
    if (!task.identical_groups.empty()) {
      std::vector<std::vector<NodeId>> groups;
      for (const auto& group : task.identical_groups) {
        std::vector<NodeId> g_local;
        for (NodeId g : group) {
          if (g == kCollectorId || g > num_nodes_ || shard_of(g) != s) continue;
          g_local.push_back(to_local(g));
        }
        sort_unique(g_local);
        if (!g_local.empty()) groups.push_back(std::move(g_local));
      }
      sub.task.identical_groups = std::move(groups);
    }
    out.push_back(std::move(sub));
  }
  return out;
}

}  // namespace remo::federation
