// The root-of-roots aggregation tier (DESIGN.md §12): pure merge
// functions that fold per-shard core outputs — Status, RepairReport,
// collected-pair streams — into one federation-wide view. Kept free of
// facade state so the merges are unit-testable and reusable by benches.
#pragma once

#include <vector>

#include "core/monitoring_system.h"
#include "federation/shard_router.h"

namespace remo::federation {

/// Sums per-shard status counters into the root view. `coverage` is
/// recomputed from the merged pair counts (1.0 when nothing is
/// requested); `tasks` sums per-shard subtask counts — the facade
/// overwrites it with the user-facing task count, since a cross-shard
/// task appears in every shard it spans.
MonitoringSystem::Status merge_status(
    const std::vector<MonitoringSystem::Status>& per_shard);

/// Sums every lifetime counter of the per-shard repair loops, including
/// the lag sums behind the mean detect/repair latencies.
RepairReport merge_repair_reports(const std::vector<RepairReport>& per_shard);

/// Translates one shard's collected-pair stream into global node ids
/// (sorted; the shard-local order is preserved by the monotonic id map).
std::vector<NodeAttrPair> pairs_to_global(std::vector<NodeAttrPair> local,
                                          const ShardRouter& router,
                                          std::uint32_t shard);

/// K-way merge of per-shard global-id streams into one sorted stream.
/// Shards partition the node space, so the inputs are disjoint and the
/// output size is the sum of the input sizes — the pair-count
/// conservation the federation tests pin.
std::vector<NodeAttrPair> merge_pair_streams(
    std::vector<std::vector<NodeAttrPair>> per_shard);

}  // namespace remo::federation
