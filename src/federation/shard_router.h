// Deterministic node-space sharding for the federation tier (DESIGN.md
// §12). A federation splits the global node universe [1, n] across K
// shard-local monitoring cores; the router owns the (pure, stateless)
// bijection between global node ids and (shard, local id) coordinates and
// splits task submissions into per-shard subtasks along it.
//
// The assignment is round-robin by id — shard(g) = (g-1) mod K — which
//   - balances shard sizes to within one node,
//   - gives closed-form O(1) maps both ways (no tables to keep in sync),
//   - is bit-deterministic across runs, platforms, and insertion orders
//     (a property test pins this; hash-based placement would not be).
// With K = 1 every map is the identity, which is what makes the
// FederatedMonitoringSystem facade bit-compatible with the singleton
// MonitoringSystem.
#pragma once

#include <cstdint>
#include <vector>

#include "cost/system_model.h"
#include "task/task.h"

namespace remo::federation {

class ShardRouter {
 public:
  /// Routes `num_nodes` global monitoring nodes (ids 1..num_nodes) across
  /// `num_shards` shards. `num_shards` is clamped to at least 1.
  ShardRouter(std::size_t num_nodes, std::size_t num_shards);

  std::size_t num_shards() const noexcept { return num_shards_; }
  std::size_t num_nodes() const noexcept { return num_nodes_; }

  /// Shard owning global node `global` (1-based; not the collector).
  std::uint32_t shard_of(NodeId global) const;
  /// Global id -> the owning shard's local id. The collector (0) maps to
  /// the shard-local collector (0) in every shard.
  NodeId to_local(NodeId global) const noexcept;
  /// Inverse: (shard, local id) -> global id; (s, 0) -> 0.
  NodeId to_global(std::uint32_t shard, NodeId local) const noexcept;

  /// Monitoring nodes assigned to `shard` (count, and the global ids in
  /// ascending order — which is also ascending local-id order).
  std::size_t shard_size(std::uint32_t shard) const;
  std::vector<NodeId> shard_nodes(std::uint32_t shard) const;

  /// The shard-local system model: `shard`'s nodes with dense local ids,
  /// capacities and observable sets copied from `global`, plus the shard's
  /// own collector. `collector_capacity` = 0 inherits the global
  /// collector's capacity (each shard root is assumed to be as provisioned
  /// as the old singleton root); pass a positive value to model thinner
  /// per-shard roots.
  SystemModel shard_system(const SystemModel& global, std::uint32_t shard,
                           Capacity collector_capacity = 0.0) const;

  /// One per-shard piece of a routed task, expressed in the shard's local
  /// node-id space with routing metadata (origin_id/home_shard) filled in.
  struct RoutedSubtask {
    std::uint32_t shard = 0;
    MonitoringTask task;
  };

  /// Splits `task` into per-shard subtasks: each shard receives the task's
  /// nodes it owns (translated to local ids), the full attribute list, and
  /// the task's frequency/aggregation/reliability settings. Shards with no
  /// nodes get no subtask; the result is ordered by ascending shard.
  /// Node ids outside [1, num_nodes] are dropped (the singleton task
  /// manager skips them at dedup time; here they have no owning shard).
  /// DSDP identical_groups are filtered to each shard's membership —
  /// groups that span shards degrade to their per-shard remnants (see
  /// DESIGN.md §12 for the caveat).
  ///
  /// With num_shards == 1 the task is passed through verbatim (no
  /// reordering, no dropping) so the K=1 facade is bit-identical to the
  /// unsharded system.
  std::vector<RoutedSubtask> route(const MonitoringTask& task) const;

 private:
  std::size_t num_nodes_;
  std::size_t num_shards_;
};

}  // namespace remo::federation
