#include "federation/federated_system.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/sorted_vector.h"
#include "federation/aggregator.h"
#include "obs/metrics.h"

namespace remo::federation {

namespace {

/// Unique node ids within [1, universe] — the normalization the routing
/// conservation accounting is stated over (the task manager applies the
/// same one at dedup time, so this is also "nodes that can yield pairs").
std::size_t normalized_node_count(const std::vector<NodeId>& nodes,
                                  std::size_t universe) {
  std::vector<NodeId> in_range;
  in_range.reserve(nodes.size());
  for (NodeId n : nodes)
    if (n != kCollectorId && n <= universe) in_range.push_back(n);
  sort_unique(in_range);
  return in_range.size();
}

std::size_t unique_attr_count(const std::vector<AttrId>& attrs) {
  std::vector<AttrId> a = attrs;
  sort_unique(a);
  return a.size();
}

}  // namespace

FederatedMonitoringSystem::FederatedMonitoringSystem(SystemModel global,
                                                     FederationOptions options)
    : system_(std::move(global)),
      options_(std::move(options)),
      router_(system_.num_nodes(),
              std::max<std::size_t>(1, options_.num_shards)) {
  const std::size_t k = router_.num_shards();
  registries_.reserve(k);
  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    registries_.push_back(std::make_unique<obs::Registry>());

    MonitoringSystemOptions opts = options_.shard;
    opts.shard = ShardIdentity{static_cast<std::uint32_t>(s),
                               static_cast<std::uint32_t>(k)};
    // Each core publishes into its own registry; publish_metrics()
    // republishes them labeled so the series stay separable per shard.
    opts.metrics = registries_.back().get();
    opts.planner.metrics = registries_.back().get();
    // Recovery callbacks cross the facade boundary: the caller speaks
    // global ids, the shard core speaks local ones.
    if (opts.recovery.on_detect) {
      auto user_cb = opts.recovery.on_detect;
      const auto shard_idx = static_cast<std::uint32_t>(s);
      opts.recovery.on_detect = [this, user_cb,
                                 shard_idx](const LivenessEvent& ev) {
        LivenessEvent global_ev = ev;
        global_ev.node = router_.to_global(shard_idx, ev.node);
        user_cb(global_ev);
      };
    }

    shards_.push_back(std::make_unique<MonitoringSystem>(
        router_.shard_system(system_, static_cast<std::uint32_t>(s),
                             options_.shard_collector_capacity),
        std::move(opts)));
  }
}

TaskId FederatedMonitoringSystem::add_task(MonitoringTask task) {
  const TaskId id = next_id_++;
  task.id = id;

  Route route;
  route.user = task;
  const auto subs = router_.route(task);
  for (const auto& sub : subs) {
    MonitoringTask local = sub.task;
    const std::size_t node_count =
        normalized_node_count(local.nodes, router_.shard_size(sub.shard));
    const TaskId local_id = shards_[sub.shard]->add_task(std::move(local));
    route.subtasks.push_back(Sub{sub.shard, local_id, node_count});
    ++routing_.subtasks_routed;
    ++routing_.subtasks_active;
    routing_.routed_node_refs += node_count;
  }
  ++routing_.tasks_submitted;
  if (route.subtasks.size() > 1)
    ++routing_.cross_shard_tasks;
  else
    ++routing_.single_shard_tasks;

  routes_.emplace(id, std::move(route));
  ++routes_generation_;
  if (validation_enabled()) check_invariants();
  return id;
}

bool FederatedMonitoringSystem::remove_task(TaskId id) {
  auto it = routes_.find(id);
  if (it == routes_.end()) return false;
  for (const Sub& sub : it->second.subtasks) {
    const bool removed = shards_[sub.shard]->remove_task(sub.local_id);
    REMO_ASSERT(removed, "shard ", sub.shard, " lost subtask ", sub.local_id,
                " of federated task ", id);
    --routing_.subtasks_active;
  }
  routes_.erase(it);
  ++routes_generation_;
  if (validation_enabled()) check_invariants();
  return true;
}

bool FederatedMonitoringSystem::modify_task(MonitoringTask task) {
  auto it = routes_.find(task.id);
  if (it == routes_.end()) return false;
  Route& route = it->second;

  // Re-route the new definition and reconcile per shard: shards present in
  // both get a modify (reusing the shard-local task id), shards only in
  // the old routing get a remove, shards only in the new one get an add.
  const auto subs = router_.route(task);
  std::vector<Sub> next;
  next.reserve(subs.size());
  auto old_it = route.subtasks.begin();  // ascending by shard, like `subs`
  for (const auto& sub : subs) {
    while (old_it != route.subtasks.end() && old_it->shard < sub.shard) {
      const bool removed = shards_[old_it->shard]->remove_task(old_it->local_id);
      REMO_ASSERT(removed, "shard ", old_it->shard, " lost subtask ",
                  old_it->local_id, " of federated task ", task.id);
      --routing_.subtasks_active;
      ++old_it;
    }
    MonitoringTask local = sub.task;
    const std::size_t node_count =
        normalized_node_count(local.nodes, router_.shard_size(sub.shard));
    TaskId local_id;
    if (old_it != route.subtasks.end() && old_it->shard == sub.shard) {
      local_id = old_it->local_id;
      local.id = local_id;
      const bool modified = shards_[sub.shard]->modify_task(std::move(local));
      REMO_ASSERT(modified, "shard ", sub.shard, " lost subtask ", local_id,
                  " of federated task ", task.id);
      ++old_it;
    } else {
      local_id = shards_[sub.shard]->add_task(std::move(local));
      ++routing_.subtasks_routed;
      ++routing_.subtasks_active;
    }
    routing_.routed_node_refs += node_count;
    next.push_back(Sub{sub.shard, local_id, node_count});
  }
  for (; old_it != route.subtasks.end(); ++old_it) {
    const bool removed = shards_[old_it->shard]->remove_task(old_it->local_id);
    REMO_ASSERT(removed, "shard ", old_it->shard, " lost subtask ",
                old_it->local_id, " of federated task ", task.id);
    --routing_.subtasks_active;
  }

  route.user = task;
  route.subtasks = std::move(next);
  ++routes_generation_;
  if (validation_enabled()) check_invariants();
  return true;
}

FederatedMonitoringSystem::Status FederatedMonitoringSystem::status(double now) {
  // Poll the shards first: their lazy replans settle their generations, so
  // the counter read below is stable for the cache check.
  const std::vector<Status> per_shard = shard_statuses(now);
  const std::uint64_t gen = generation();
  if (status_cache_.has_value() && status_generation_ == gen)
    return *status_cache_;
  Status merged = merge_status(per_shard);
  // A cross-shard task contributed one subtask per spanned shard; the
  // user-facing count is the number of routed tasks.
  merged.tasks = routes_.size();
  status_cache_ = merged;
  status_generation_ = gen;
  return merged;
}

std::vector<FederatedMonitoringSystem::Status>
FederatedMonitoringSystem::shard_statuses(double now) {
  std::vector<Status> out;
  out.reserve(shards_.size());
  for (auto& shard : shards_) out.push_back(shard->status(now));
  return out;
}

std::vector<NodeAttrPair> FederatedMonitoringSystem::collected_pairs(double now) {
  std::vector<std::vector<NodeAttrPair>> per_shard;
  per_shard.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    per_shard.push_back(pairs_to_global(shards_[s]->collected_pairs(now),
                                        router_,
                                        static_cast<std::uint32_t>(s)));
  return merge_pair_streams(std::move(per_shard));
}

RepairReport FederatedMonitoringSystem::repair_report() const {
  std::vector<RepairReport> reports;
  reports.reserve(shards_.size());
  for (const auto& shard : shards_) reports.push_back(shard->repair_report());
  return merge_repair_reports(reports);
}

void FederatedMonitoringSystem::replan(double now) {
  for (auto& shard : shards_) shard->replan(now);
}

const Topology& FederatedMonitoringSystem::topology(double now) {
  REMO_ASSERT(shards_.size() == 1,
              "topology() is the K=1 compatibility accessor; a ",
              shards_.size(), "-shard federation has one forest per shard — "
              "use shard(k).topology()");
  return shards_.front()->topology(now);
}

void FederatedMonitoringSystem::on_delivery(NodeAttrPair pair,
                                            std::uint64_t epoch) {
  const std::uint32_t s = router_.shard_of(pair.node);
  pair.node = router_.to_local(pair.node);
  shards_[s]->on_delivery(pair, epoch);
}

bool FederatedMonitoringSystem::end_epoch(std::uint64_t epoch) {
  bool changed = false;
  for (auto& shard : shards_)
    if (shard->end_epoch(epoch)) changed = true;
  return changed;
}

void FederatedMonitoringSystem::publish_metrics() {
  obs::Registry& out = obs::registry_or_global(options_.metrics);
  for (std::size_t s = 0; s < shards_.size(); ++s)
    obs::publish_labeled(registries_[s]->snapshot(),
                         "shard" + std::to_string(s), out);

  // Set semantics (reset + add) so repeated publishes stay idempotent.
  const auto set_counter = [&out](const char* name, std::size_t v) {
    obs::Counter& c = out.counter(name);
    c.reset();
    c.add(v);
  };
  out.gauge("federation.shards").set(static_cast<double>(shards_.size()));
  set_counter("federation.tasks", routes_.size());
  set_counter("federation.tasks_submitted", routing_.tasks_submitted);
  set_counter("federation.tasks_single_shard", routing_.single_shard_tasks);
  set_counter("federation.tasks_cross_shard", routing_.cross_shard_tasks);
  set_counter("federation.subtasks_routed", routing_.subtasks_routed);
  set_counter("federation.subtasks_active", routing_.subtasks_active);
  set_counter("federation.routed_node_refs", routing_.routed_node_refs);
}

std::string FederatedMonitoringSystem::export_json(double now) {
  std::ostringstream os;
  os << "{\"federation\":{"
     << "\"shards\":" << shards_.size()
     << ",\"tasks\":" << routes_.size()
     << ",\"tasks_submitted\":" << routing_.tasks_submitted
     << ",\"single_shard_tasks\":" << routing_.single_shard_tasks
     << ",\"cross_shard_tasks\":" << routing_.cross_shard_tasks
     << ",\"subtasks_routed\":" << routing_.subtasks_routed
     << ",\"subtasks_active\":" << routing_.subtasks_active
     << ",\"routed_node_refs\":" << routing_.routed_node_refs
     << "},\"shards\":[";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (s > 0) os << ",";
    os << shards_[s]->export_json(now);
  }
  os << "]}";
  return os.str();
}

std::string FederatedMonitoringSystem::export_dot(double now) {
  if (shards_.size() == 1) return shards_.front()->export_dot(now);
  std::ostringstream os;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    os << "// shard " << s << "\n" << shards_[s]->export_dot(now);
  }
  return os.str();
}

std::uint64_t FederatedMonitoringSystem::generation() const noexcept {
  std::uint64_t g = routes_generation_;
  for (const auto& shard : shards_) g += shard->generation();
  return g;
}

void FederatedMonitoringSystem::restore_routes(std::map<TaskId, Route> routes,
                                               TaskId next_id,
                                               RoutingStats routing) {
  routes_ = std::move(routes);
  if (!routes_.empty()) {
    REMO_ASSERT(next_id > routes_.rbegin()->first, "restored next task id ",
                next_id, " collides with live federated task ",
                routes_.rbegin()->first);
  }
  next_id_ = next_id;
  routing_ = routing;
  ++routes_generation_;
  if (validation_enabled()) check_invariants();
}

std::size_t FederatedMonitoringSystem::global_pair_count(
    const MonitoringTask& t) const {
  return normalized_node_count(t.nodes, system_.num_nodes()) *
         unique_attr_count(t.attrs);
}

void FederatedMonitoringSystem::check_invariants() const {
  std::size_t active = 0;
  for (const auto& [id, route] : routes_) {
    REMO_VALIDATE(route.user.id == id, "route ", id, " stores task id ",
                  route.user.id);
    const std::size_t attrs = unique_attr_count(route.user.attrs);
    std::size_t routed_pairs = 0;
    std::uint32_t prev_shard = 0;
    bool first = true;
    for (const Sub& sub : route.subtasks) {
      REMO_VALIDATE(sub.shard < shards_.size(), "task ", id,
                    " routed to nonexistent shard ", sub.shard);
      REMO_VALIDATE(first || sub.shard > prev_shard, "task ", id,
                    " subtasks out of shard order or duplicated on shard ",
                    sub.shard);
      first = false;
      prev_shard = sub.shard;
      routed_pairs += sub.node_count * attrs;
    }
    active += route.subtasks.size();
    // The conservation argument: shards partition [1, n], so the
    // per-shard node sets partition the task's normalized node set —
    // nothing lost, nothing duplicated by routing.
    REMO_VALIDATE(routed_pairs == global_pair_count(route.user), "task ", id,
                  " requests ", global_pair_count(route.user),
                  " pairs globally but its subtasks carry ", routed_pairs);
  }
  REMO_VALIDATE(active == routing_.subtasks_active, "route table holds ",
                active, " subtasks but the counter says ",
                routing_.subtasks_active);
}

}  // namespace remo::federation
