#include "federation/aggregator.h"

#include <algorithm>

namespace remo::federation {

MonitoringSystem::Status merge_status(
    const std::vector<MonitoringSystem::Status>& per_shard) {
  MonitoringSystem::Status out;
  std::vector<RepairReport> repairs;
  repairs.reserve(per_shard.size());
  for (const auto& s : per_shard) {
    out.tasks += s.tasks;
    out.pairs += s.pairs;
    out.collected += s.collected;
    out.trees += s.trees;
    out.message_volume += s.message_volume;
    out.adaptations += s.adaptations;
    out.adaptation_messages += s.adaptation_messages;
    out.delta_applies += s.delta_applies;
    repairs.push_back(s.repair);
  }
  out.coverage = out.pairs == 0
                     ? 1.0
                     : static_cast<double>(out.collected) /
                           static_cast<double>(out.pairs);
  out.repair = merge_repair_reports(repairs);
  return out;
}

RepairReport merge_repair_reports(const std::vector<RepairReport>& per_shard) {
  RepairReport out;
  for (const auto& r : per_shard) {
    out.outages_detected += r.outages_detected;
    out.recoveries_detected += r.recoveries_detected;
    out.repair_passes += r.repair_passes;
    out.repair_messages += r.repair_messages;
    out.orphans_reattached += r.orphans_reattached;
    out.suspects_parked += r.suspects_parked;
    out.members_dropped += r.members_dropped;
    out.pairs_dropped += r.pairs_dropped;
    out.replans_after_outage += r.replans_after_outage;
    out.detect_lag_sum += r.detect_lag_sum;
    out.repair_lag_sum += r.repair_lag_sum;
  }
  return out;
}

std::vector<NodeAttrPair> pairs_to_global(std::vector<NodeAttrPair> local,
                                          const ShardRouter& router,
                                          std::uint32_t shard) {
  for (auto& p : local) p.node = router.to_global(shard, p.node);
  // Local order is (node, attr)-sorted and to_global is strictly
  // increasing in the local id, so the stream stays sorted — kept as an
  // explicit sort-on-debt guard in case a caller feeds an unsorted list.
  if (!std::is_sorted(local.begin(), local.end()))
    std::sort(local.begin(), local.end());
  return local;
}

std::vector<NodeAttrPair> merge_pair_streams(
    std::vector<std::vector<NodeAttrPair>> per_shard) {
  std::size_t total = 0;
  for (const auto& s : per_shard) total += s.size();
  std::vector<NodeAttrPair> out;
  out.reserve(total);
  for (auto& s : per_shard) out.insert(out.end(), s.begin(), s.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace remo::federation
