// The REMO message cost model (Sec. 2.3).
//
// Every message carries a fixed per-message overhead C plus a per-value
// cost a: cost(x values) = C + a·x. Both sending and receiving a message
// charge this cost to the respective endpoint. The paper motivates the
// model from BlueGene/P measurements (Fig. 2): root CPU grows linearly in
// the *number* of received messages (~0.26%/msg) and, much more slowly, in
// the number of values per message (0.2% -> 1.4% for 1 -> 256 values).
#pragma once

#include <cassert>

#include "common/types.h"

namespace remo {

struct CostModel {
  /// Per-message overhead C (cost units). Paper default keeps C/a around 20
  /// in most experiments; benches sweep the ratio (Fig. 6c/6d).
  double per_message = 20.0;
  /// Per-value cost a (cost units per attribute value).
  double per_value = 1.0;

  constexpr CostModel() = default;
  constexpr CostModel(double c, double a) : per_message(c), per_value(a) {}

  /// Cost of sending (or receiving) one message carrying `values` values.
  constexpr Capacity message_cost(std::size_t values) const noexcept {
    return per_message + per_value * static_cast<double>(values);
  }

  /// The C/a ratio the paper sweeps in Fig. 6c/6d.
  constexpr double overhead_ratio() const noexcept {
    return per_value > 0 ? per_message / per_value : 0.0;
  }

  /// How many values amortize the per-message overhead down to `frac` of
  /// total message cost. Used by heuristics to reason about batching.
  constexpr double values_for_overhead_fraction(double frac) const noexcept {
    // frac = C / (C + a·x)  =>  x = C (1 - frac) / (a · frac)
    return per_message * (1.0 - frac) / (per_value * frac);
  }

  friend constexpr bool operator==(const CostModel&, const CostModel&) = default;
};

}  // namespace remo
