// The REMO message cost model (Sec. 2.3).
//
// Every message carries a fixed per-message overhead C plus a per-value
// cost a: cost(x values) = C + a·x. Both sending and receiving a message
// charge this cost to the respective endpoint. The paper motivates the
// model from BlueGene/P measurements (Fig. 2): root CPU grows linearly in
// the *number* of received messages (~0.26%/msg) and, much more slowly, in
// the number of values per message (0.2% -> 1.4% for 1 -> 256 values).
#pragma once

#include "common/check.h"
#include "common/types.h"

namespace remo {

struct CostModel {
  /// Per-message overhead C (cost units). Paper default keeps C/a around 20
  /// in most experiments; benches sweep the ratio (Fig. 6c/6d).
  double per_message = 20.0;
  /// Per-value cost a (cost units per attribute value).
  double per_value = 1.0;

  constexpr CostModel() = default;
  constexpr CostModel(double c, double a) : per_message(c), per_value(a) {
    // Negative parameters would make message_cost() a credit: feasibility
    // walks (u_i ≤ b_i) and the Sec. 4.2 throttle both assume costs are
    // monotone in the payload. Contract-checked here so every downstream
    // accounting path can rely on it (REMO_ASSERT is constexpr-safe: a
    // violating constant expression fails to compile).
    REMO_ASSERT(c >= 0.0, "per-message overhead C=", c, " (must be >= 0)");
    REMO_ASSERT(a >= 0.0, "per-value cost a=", a, " (must be >= 0)");
  }

  /// Cost of sending (or receiving) one message carrying `values` values.
  constexpr Capacity message_cost(std::size_t values) const noexcept {
    return per_message + per_value * static_cast<double>(values);
  }

  /// The C/a ratio the paper sweeps in Fig. 6c/6d.
  constexpr double overhead_ratio() const noexcept {
    return per_value > 0 ? per_message / per_value : 0.0;
  }

  /// How many values amortize the per-message overhead down to `frac` of
  /// total message cost. Used by heuristics to reason about batching.
  constexpr double values_for_overhead_fraction(double frac) const noexcept {
    REMO_ASSERT(frac > 0.0 && frac <= 1.0,
                "overhead fraction=", frac, " outside (0, 1]");
    REMO_ASSERT(per_value > 0.0, "per-value cost a=", per_value,
                " (fraction undefined for a free value)");
    // frac = C / (C + a·x)  =>  x = C (1 - frac) / (a · frac)
    return per_message * (1.0 - frac) / (per_value * frac);
  }

  friend constexpr bool operator==(const CostModel&, const CostModel&) = default;
};

}  // namespace remo
