#include "cost/system_model.h"

#include <algorithm>
#include <stdexcept>

#include "common/sorted_vector.h"

namespace remo {

SystemModel::SystemModel(std::size_t num_nodes, Capacity default_capacity,
                         CostModel cost)
    : num_nodes_(num_nodes),
      cost_(cost),
      capacity_(num_nodes + 1, default_capacity),
      observable_(num_nodes + 1) {
  if (num_nodes == 0) throw std::invalid_argument("SystemModel needs >= 1 node");
}

void SystemModel::set_observable(NodeId id, std::vector<AttrId> attrs) {
  sort_unique(attrs);
  observable_.at(id) = std::move(attrs);
}

bool SystemModel::observes(NodeId id, AttrId attr) const {
  return set_contains(observable_.at(id), attr);
}

std::vector<NodeId> SystemModel::monitoring_nodes() const {
  std::vector<NodeId> ids(num_nodes_);
  for (std::size_t i = 0; i < num_nodes_; ++i) ids[i] = static_cast<NodeId>(i + 1);
  return ids;
}

void SystemModel::assign_random_attributes(std::size_t attr_universe,
                                           std::size_t attrs_per_node, Rng& rng) {
  attrs_per_node = std::min(attrs_per_node, attr_universe);
  for (NodeId id = 1; id <= num_nodes_; ++id) {
    auto picks = rng.sample(static_cast<std::uint32_t>(attr_universe),
                            static_cast<std::uint32_t>(attrs_per_node));
    std::vector<AttrId> attrs(picks.begin(), picks.end());
    set_observable(id, std::move(attrs));
  }
}

void SystemModel::perturb_capacities(double lo_frac, double hi_frac, Rng& rng) {
  for (NodeId id = 1; id <= num_nodes_; ++id)
    capacity_[id] *= rng.uniform(lo_frac, hi_frac);
}

}  // namespace remo
