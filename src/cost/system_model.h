// The monitored system: n monitoring nodes plus the central collector,
// each with a resource capacity b_i and a set of locally observable
// attributes A_i (Sec. 2.3).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "cost/cost_model.h"

namespace remo {

class SystemModel {
 public:
  /// Builds a system of `num_nodes` monitoring nodes (ids 1..num_nodes)
  /// plus the collector (id 0). All capacities start at `default_capacity`.
  SystemModel(std::size_t num_nodes, Capacity default_capacity,
              CostModel cost = CostModel{});

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  /// Total node count including the collector.
  std::size_t num_vertices() const noexcept { return num_nodes_ + 1; }

  const CostModel& cost() const noexcept { return cost_; }
  void set_cost(CostModel cost) noexcept { cost_ = cost; }

  Capacity capacity(NodeId id) const { return capacity_.at(id); }
  void set_capacity(NodeId id, Capacity b) { capacity_.at(id) = b; }
  void set_collector_capacity(Capacity b) { capacity_.at(kCollectorId) = b; }

  /// Attributes locally observable at `id` (sorted, unique).
  const std::vector<AttrId>& observable(NodeId id) const { return observable_.at(id); }
  /// Replaces the observable set; input is sorted and deduplicated.
  void set_observable(NodeId id, std::vector<AttrId> attrs);
  /// True iff attribute `attr` is observable at node `id`.
  bool observes(NodeId id, AttrId attr) const;

  /// All monitoring node ids (1..n), excluding the collector.
  std::vector<NodeId> monitoring_nodes() const;

  /// Assigns every monitoring node a random subset of `attrs_per_node`
  /// attributes drawn from [0, attr_universe) — the synthetic-dataset setup
  /// of Sec. 7 ("we assign a random subset of attributes to each node").
  void assign_random_attributes(std::size_t attr_universe, std::size_t attrs_per_node,
                                Rng& rng);

  /// Perturbs capacities uniformly in [lo_frac, hi_frac] of their current
  /// value, modeling heterogeneous leftover capacity on shared hosts.
  void perturb_capacities(double lo_frac, double hi_frac, Rng& rng);

 private:
  std::size_t num_nodes_;
  CostModel cost_;
  std::vector<Capacity> capacity_;          // indexed by NodeId, [0, n]
  std::vector<std::vector<AttrId>> observable_;  // indexed by NodeId
};

}  // namespace remo
